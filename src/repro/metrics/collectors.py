"""Metric collectors shared by Flower-CDN, Squirrel and the experiment harness.

Two collectors exist:

* :class:`MetricsCollector` records per-query outcomes (hit/miss, lookup
  latency, transfer distance, overlay hops) and exposes the aggregates,
  time series and distributions needed by every table and figure;
* :class:`BandwidthAccountant` records background-traffic bytes (gossip,
  push, keepalive, summary refresh messages) per peer and converts them to
  the paper's "average bps experienced by a content or directory peer".
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

from repro.metrics.histogram import Histogram
from repro.metrics.timeseries import TimeSeries


class QueryOutcome(Enum):
    """Where a query was ultimately served from."""

    #: served by a content peer of the requester's own content overlay
    LOCAL_OVERLAY_HIT = "local_overlay_hit"
    #: served by a content peer of another locality's content overlay of the
    #: same website (reached through directory summaries)
    REMOTE_OVERLAY_HIT = "remote_overlay_hit"
    #: served by any peer of the P2P system without locality attribution
    #: (used by the Squirrel baseline, which has no locality notion)
    PEER_HIT = "peer_hit"
    #: the P2P system could not provide the object; served by the origin server
    SERVER_MISS = "server_miss"

    @property
    def is_hit(self) -> bool:
        return self is not QueryOutcome.SERVER_MISS


@dataclass(slots=True, unsafe_hash=True)
class QueryRecord:
    """Everything the evaluation needs to know about one processed query.

    Constructed once per simulated query inside the dispatch hot loop.
    Deliberately *not* frozen — a frozen ``__init__`` routes every field
    through ``object.__setattr__``, which costs real time at half a million
    records per run; ``unsafe_hash`` keeps value-object hashing.  Treat
    instances as immutable.
    """

    query_id: int
    time: float
    website: str
    locality: int
    outcome: QueryOutcome
    lookup_latency_ms: float
    transfer_distance_ms: float
    overlay_hops: int = 0
    provider: Optional[str] = None
    redirection_failures: int = 0


#: compact-mode collectors fold their pending buffer into the aggregates once
#: it reaches this many entries, so the buffer acts as a bounded ring rather
#: than an ever-growing list
PENDING_FLUSH_THRESHOLD = 4096


class MetricsCollector:
    """Accumulates :class:`QueryRecord` objects and derives the paper's metrics.

    Two storage modes share identical aggregate semantics:

    * ``retain_records=True`` (default) — every record is kept; ``record()``
      is a bare list append and aggregation happens lazily on first read.
    * ``retain_records=False`` (compact) — records are folded into the
      series/histogram/counter reservoirs in bounded batches and then
      discarded, plus two scalar accumulators for hops and redirection
      failures.  Memory stays O(windows + bins) regardless of query count —
      the paper-scale mode.  ``records`` is unavailable.
    """

    def __init__(
        self,
        window_s: float = 3600.0,
        latency_bin_ms: float = 150.0,
        latency_bins: int = 10,
        distance_bin_ms: float = 100.0,
        distance_bins: int = 6,
        retain_records: bool = True,
    ) -> None:
        self._records: List[QueryRecord] = []
        self._hit_series = TimeSeries(window_s)
        self._latency_series = TimeSeries(window_s)
        self._distance_series = TimeSeries(window_s)
        self._latency_histogram = Histogram(latency_bin_ms, latency_bins)
        self._distance_histogram = Histogram(distance_bin_ms, distance_bins)
        self._outcome_counts: Dict[QueryOutcome, int] = defaultdict(int)
        self._retain = retain_records
        # record() is on the per-query hot path, so it only appends; series,
        # histograms and outcome counts are folded in lazily (and
        # incrementally) by _sync() when an aggregate is read.  In compact
        # mode the same buffer is flushed whenever it fills, so folded
        # records can be dropped instead of retained.
        self._append_record = self._records.append
        if retain_records:
            # Retained mode's hot path is the bare list append itself (the
            # instance attribute shadows the compact-mode method below).
            self.record = self._append_record
        self._aggregated_upto = 0
        #: compact-mode scalar reservoirs (folded counterparts of the
        #: per-record reductions the retain mode computes on demand)
        self._folded_count = 0
        self._folded_hops = 0
        self._folded_failures = 0

    # -- recording -------------------------------------------------------------

    def record(self, record: QueryRecord) -> None:
        # Compact mode: append, then flush the buffer once it fills (retained
        # mode rebinds ``record`` to the raw list append in __init__).
        self._append_record(record)
        if len(self._records) >= PENDING_FLUSH_THRESHOLD:
            self._sync()

    def record_all(self, records: Iterable[QueryRecord]) -> None:
        self._records.extend(records)
        if not self._retain and len(self._records) >= PENDING_FLUSH_THRESHOLD:
            self._sync()

    def _sync(self) -> None:
        """Fold not-yet-aggregated records into the derived structures.

        Incremental: each record is folded exactly once, in append order, so
        the resulting series/histograms/counts are identical to eager
        per-record updates regardless of how reads and writes interleave.
        Compact mode additionally drops the folded records.
        """
        records = self._records
        upto = self._aggregated_upto
        if upto == len(records):
            return
        counts = self._outcome_counts
        hit_add = self._hit_series.add
        latency_add = self._latency_series.add
        latency_hist_add = self._latency_histogram.add
        distance_add = self._distance_series.add
        distance_hist_add = self._distance_histogram.add
        miss = QueryOutcome.SERVER_MISS
        folded_hops = 0
        folded_failures = 0
        for record in records[upto:]:
            outcome = record.outcome
            counts[outcome] += 1
            time = record.time
            hit_add(time, 0.0 if outcome is miss else 1.0)
            latency_add(time, record.lookup_latency_ms)
            latency_hist_add(record.lookup_latency_ms)
            if outcome is not miss:
                # The transfer-distance metric is defined over queries
                # satisfied from the P2P system (Section 6).
                distance_add(time, record.transfer_distance_ms)
                distance_hist_add(record.transfer_distance_ms)
            folded_hops += record.overlay_hops
            folded_failures += record.redirection_failures
        self._folded_count += len(records) - upto
        self._folded_hops += folded_hops
        self._folded_failures += folded_failures
        if self._retain:
            self._aggregated_upto = len(records)
        else:
            records.clear()
            self._aggregated_upto = 0

    def merge_compact_from(self, other: "MetricsCollector") -> None:
        """Fold another collector's *aggregates* into this one (compact merge).

        Used by the sharded engine when records are not retained: series
        buckets, histogram bins, outcome counts and the folded scalars all
        add exactly (integer counts, integer-valued or identical floats).
        Retained-mode merging instead replays the concatenated records into
        a fresh collector, which reproduces single-process output bitwise.
        """
        self._sync()
        other._sync()
        self._hit_series.merge_from(other._hit_series)
        self._latency_series.merge_from(other._latency_series)
        self._distance_series.merge_from(other._distance_series)
        self._latency_histogram.merge_from(other._latency_histogram)
        self._distance_histogram.merge_from(other._distance_histogram)
        for outcome, count in other._outcome_counts.items():
            self._outcome_counts[outcome] += count
        self._folded_count += other._folded_count
        self._folded_hops += other._folded_hops
        self._folded_failures += other._folded_failures
        if self._retain and other._retain:
            self._records.extend(other._records)
            self._aggregated_upto = len(self._records)

    # -- aggregates ---------------------------------------------------------------

    @property
    def retains_records(self) -> bool:
        return self._retain

    @property
    def num_queries(self) -> int:
        if self._retain:
            return len(self._records)
        return self._folded_count + len(self._records)

    @property
    def records(self) -> Sequence[QueryRecord]:
        if not self._retain:
            raise RuntimeError(
                "per-query records are not retained in compact mode "
                "(MetricsCollector(retain_records=False))"
            )
        return tuple(self._records)

    @property
    def hit_ratio(self) -> float:
        """Fraction of queries satisfied from the P2P system."""
        total = self.num_queries
        if not total:
            return 0.0
        self._sync()
        hits = sum(count for outcome, count in self._outcome_counts.items() if outcome.is_hit)
        return hits / total

    @property
    def average_lookup_latency_ms(self) -> float:
        self._sync()
        return self._latency_histogram.mean

    @property
    def average_transfer_distance_ms(self) -> float:
        self._sync()
        return self._distance_histogram.mean

    @property
    def average_overlay_hops(self) -> float:
        total = self.num_queries
        if not total:
            return 0.0
        self._sync()
        if self._retain:
            return sum(r.overlay_hops for r in self._records) / total
        return self._folded_hops / total

    @property
    def redirection_failures(self) -> int:
        if self._retain:
            return sum(r.redirection_failures for r in self._records)
        self._sync()
        return self._folded_failures

    def outcome_counts(self) -> Dict[QueryOutcome, int]:
        self._sync()
        return dict(self._outcome_counts)

    def outcome_fractions(self) -> Dict[QueryOutcome, float]:
        total = self.num_queries
        if not total:
            return {}
        self._sync()
        return {outcome: count / total for outcome, count in self._outcome_counts.items()}

    # -- series and distributions ----------------------------------------------------

    @property
    def hit_ratio_series(self) -> TimeSeries:
        self._sync()
        return self._hit_series

    @property
    def lookup_latency_series(self) -> TimeSeries:
        self._sync()
        return self._latency_series

    @property
    def transfer_distance_series(self) -> TimeSeries:
        self._sync()
        return self._distance_series

    @property
    def lookup_latency_histogram(self) -> Histogram:
        self._sync()
        return self._latency_histogram

    @property
    def transfer_distance_histogram(self) -> Histogram:
        self._sync()
        return self._distance_histogram

    def steady_state_latency_ms(self, warmup_s: float) -> float:
        """Mean of per-window lookup latencies after the warm-up period."""
        self._sync()
        values = self._latency_series.values_after(warmup_s)
        return sum(values) / len(values) if values else 0.0

    def steady_state_distance_ms(self, warmup_s: float) -> float:
        self._sync()
        values = self._distance_series.values_after(warmup_s)
        return sum(values) / len(values) if values else 0.0


class BandwidthAccountant:
    """Background-traffic accounting (gossip, push, keepalive, summary refresh)."""

    #: categories of background messages counted as overhead; "replication" is
    #: only used by the active-replication extension (Section 8 future work)
    CATEGORIES = ("gossip", "push", "keepalive", "summary", "replication")
    _CATEGORY_SET = frozenset(CATEGORIES)

    def __init__(self, window_s: float = 3600.0) -> None:
        self._bytes_per_peer: Dict[str, float] = defaultdict(float)
        self._bytes_per_category: Dict[str, float] = defaultdict(float)
        self._messages_per_category: Dict[str, int] = defaultdict(int)
        self._series = TimeSeries(window_s)
        self._peer_first_seen: Dict[str, float] = {}
        # record_message() runs on every background message inside the sim
        # loop: validation stays eager (error locality), accumulation is
        # deferred to _sync() like MetricsCollector's.  The buffer is flushed
        # whenever it fills — folding is incremental and order-preserving, so
        # early flushes are invisible to readers while keeping the buffer a
        # bounded ring instead of one tuple per message of the whole run.
        self._pending: List[tuple] = []
        self._append_pending = self._pending.append

    def record_message(
        self, time: float, sender: str, receiver: str, num_bytes: int, category: str
    ) -> None:
        """Account a background message: both endpoints experience the traffic."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if category not in self._CATEGORY_SET:
            raise ValueError(f"unknown traffic category {category!r}")
        self._append_pending((time, sender, receiver, num_bytes, category))
        if len(self._pending) >= PENDING_FLUSH_THRESHOLD:
            self._sync()

    def observe_peer(self, time: float, peer: str) -> None:
        """Register a peer that participates even if it never sends traffic."""
        self._append_pending((time, peer, None, 0, None))
        if len(self._pending) >= PENDING_FLUSH_THRESHOLD:
            self._sync()

    def _sync(self) -> None:
        """Fold pending messages/observations into the aggregates, in order."""
        pending = self._pending
        if not pending:
            return
        bytes_per_peer = self._bytes_per_peer
        first_seen = self._peer_first_seen
        bytes_per_category = self._bytes_per_category
        messages_per_category = self._messages_per_category
        series_add = self._series.add
        setdefault = first_seen.setdefault
        for time, sender, receiver, num_bytes, category in pending:
            if category is None:
                # observe_peer(): participation without traffic.
                bytes_per_peer.setdefault(sender, 0.0)
                setdefault(sender, time)
                continue
            bytes_per_peer[sender] += num_bytes
            setdefault(sender, time)
            bytes_per_peer[receiver] += num_bytes
            setdefault(receiver, time)
            bytes_per_category[category] += 2 * num_bytes
            messages_per_category[category] += 1
            series_add(time, 2 * num_bytes)
        pending.clear()

    def merge_from(self, other: "BandwidthAccountant") -> None:
        """Fold another accountant's totals into this one.

        Byte totals are integer-valued floats (exact under addition in any
        order), first-seen times merge by minimum, and category/series
        aggregates add exactly — so merging per-shard accountants agrees
        bitwise with single-process accounting of the union of messages.
        """
        self._sync()
        other._sync()
        bytes_per_peer = self._bytes_per_peer
        first_seen = self._peer_first_seen
        for peer, num_bytes in other._bytes_per_peer.items():
            bytes_per_peer[peer] += num_bytes
        for peer, time in other._peer_first_seen.items():
            known = first_seen.get(peer)
            if known is None or time < known:
                first_seen[peer] = time
        for category, num_bytes in other._bytes_per_category.items():
            self._bytes_per_category[category] += num_bytes
        for category, count in other._messages_per_category.items():
            self._messages_per_category[category] += count
        self._series.merge_from(other._series)

    # -- aggregates --------------------------------------------------------------

    @property
    def num_peers(self) -> int:
        self._sync()
        return len(self._bytes_per_peer)

    @property
    def total_bytes(self) -> float:
        self._sync()
        return sum(self._bytes_per_peer.values())

    def total_bytes_by_category(self) -> Dict[str, float]:
        self._sync()
        return dict(self._bytes_per_category)

    def messages_by_category(self) -> Dict[str, int]:
        self._sync()
        return dict(self._messages_per_category)

    def average_bps_per_peer(self, duration_s: float) -> float:
        """The paper's *background traffic* metric: mean bps per participating peer."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        self._sync()
        if not self._bytes_per_peer:
            return 0.0
        # fsum: correctly rounded independent of peer iteration order, so a
        # sharded run's merged accountant agrees bitwise with single-process.
        per_peer_bps = [
            (total_bytes * 8.0) / duration_s for total_bytes in self._bytes_per_peer.values()
        ]
        return math.fsum(per_peer_bps) / len(per_peer_bps)

    def peak_bps_per_peer(self, duration_s: float) -> float:
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        self._sync()
        if not self._bytes_per_peer:
            return 0.0
        return max((b * 8.0) / duration_s for b in self._bytes_per_peer.values())

    def traffic_series(self) -> TimeSeries:
        """Per-window total background bytes (Figure 5's traffic curve)."""
        self._sync()
        return self._series

    def bps_series(self, duration_hint_s: Optional[float] = None) -> List[tuple[float, float]]:
        """Per-window average bps per peer over time."""
        del duration_hint_s  # reserved for future normalisation options
        self._sync()
        points = []
        peers = max(1, self.num_peers)
        for window in self._series.windows():
            bits = window.total * 8.0
            points.append((window.window_start, bits / (self._series.window_s * peers)))
        return points
