"""Windowed time series.

Figures 5, 6, 7(a) and 8(a) plot metrics against simulation time.  The
:class:`TimeSeries` here buckets samples into fixed windows and reports the
per-window mean (and optionally the cumulative mean), which is exactly how an
"average X over time" curve is produced from raw per-query samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class WindowStat:
    """Aggregate of the samples falling into one time window."""

    window_start: float
    count: int
    mean: float
    total: float


class TimeSeries:
    """Accumulates (time, value) samples into fixed windows."""

    def __init__(self, window_s: float) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self._window_s = window_s
        # window index -> [sum, count]; one dict lookup per sample instead of
        # two (this add() runs several times per simulated query).
        self._buckets: Dict[int, List[float]] = {}
        self._total_sum = 0.0
        self._total_count = 0

    @property
    def window_s(self) -> float:
        return self._window_s

    @property
    def total_count(self) -> int:
        return self._total_count

    @property
    def overall_mean(self) -> float:
        return self._total_sum / self._total_count if self._total_count else 0.0

    def merge_from(self, other: "TimeSeries") -> None:
        """Fold another series' windows into this one (bucket-wise sums).

        Both series must share the window width.  Used by the sharded
        engine to combine per-shard compact series; sums and counts add
        exactly because counts are integers and the values folded into a
        given bucket are identical to a single-process fold of the union.
        """
        if other._window_s != self._window_s:
            raise ValueError(
                f"window mismatch: {other._window_s} != {self._window_s}"
            )
        buckets = self._buckets
        for index, (value_sum, count) in other._buckets.items():
            bucket = buckets.get(index)
            if bucket is None:
                buckets[index] = [value_sum, count]
            else:
                bucket[0] += value_sum
                bucket[1] += count
        self._total_sum += other._total_sum
        self._total_count += other._total_count

    def add(self, time_s: float, value: float) -> None:
        if time_s < 0:
            raise ValueError("sample time must be non-negative")
        index = int(time_s // self._window_s)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [value, 1]
        else:
            bucket[0] += value
            bucket[1] += 1
        self._total_sum += value
        self._total_count += 1

    def windows(self) -> List[WindowStat]:
        """Per-window aggregates, ordered by time; empty windows are omitted."""
        stats: List[WindowStat] = []
        for index in sorted(self._buckets):
            total, count = self._buckets[index]
            count = int(count)
            stats.append(
                WindowStat(
                    window_start=index * self._window_s,
                    count=count,
                    mean=total / count,
                    total=total,
                )
            )
        return stats

    def window_means(self) -> List[Tuple[float, float]]:
        """(window start, window mean) pairs — the raw series for a figure."""
        return [(w.window_start, w.mean) for w in self.windows()]

    def cumulative_means(self) -> List[Tuple[float, float]]:
        """(window start, cumulative mean up to the end of that window) pairs.

        Hit-ratio curves (Figures 5 and 6) are cumulative: the ratio of all
        queries answered by the P2P system since the beginning of the run.
        """
        points: List[Tuple[float, float]] = []
        running_sum = 0.0
        running_count = 0
        for window in self.windows():
            running_sum += window.total
            running_count += window.count
            points.append((window.window_start, running_sum / running_count))
        return points

    def values_after(self, time_s: float) -> Sequence[float]:
        """Window means for windows starting at or after ``time_s`` (post-warm-up)."""
        return tuple(mean for start, mean in self.window_means() if start >= time_s)
