"""Fixed-bin histograms for latency / distance distributions.

Figures 7(b) and 8(b) of the paper report the *distribution* of lookup
latencies and transfer distances in fixed-width buckets (e.g. "87% of queries
are resolved within 150 ms", "61% take more than 1050 ms").  The histogram
here mirrors that presentation: uniform bins plus an overflow bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class HistogramBin:
    """One histogram bucket ``[low, high)`` (the overflow bin has ``high = inf``)."""

    low: float
    high: float
    count: int

    @property
    def label(self) -> str:
        if self.high == float("inf"):
            return f">={self.low:g}"
        return f"[{self.low:g}, {self.high:g})"


class Histogram:
    """Uniform-width histogram with an overflow bucket."""

    def __init__(self, bin_width: float, num_bins: int) -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        if num_bins <= 0:
            raise ValueError("num_bins must be positive")
        self._bin_width = bin_width
        self._num_bins = num_bins
        self._counts = [0] * (num_bins + 1)  # last slot is the overflow bin
        self._total = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    # -- recording -------------------------------------------------------------

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram values must be non-negative, got {value}")
        index = int(value // self._bin_width)
        if index >= self._num_bins:
            index = self._num_bins
        self._counts[index] += 1
        self._total += 1
        self._sum += value
        current_min = self._min
        if current_min is None or value < current_min:
            self._min = value
        current_max = self._max
        if current_max is None or value > current_max:
            self._max = value

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram's counts into this one (same binning)."""
        if (
            other._bin_width != self._bin_width
            or other._num_bins != self._num_bins
        ):
            raise ValueError("histogram binning mismatch")
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self._total += other._total
        self._sum += other._sum
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max

    # -- aggregates ---------------------------------------------------------------

    @property
    def total(self) -> int:
        return self._total

    @property
    def mean(self) -> float:
        return self._sum / self._total if self._total else 0.0

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    def bins(self) -> List[HistogramBin]:
        result: List[HistogramBin] = []
        for index in range(self._num_bins):
            result.append(
                HistogramBin(
                    low=index * self._bin_width,
                    high=(index + 1) * self._bin_width,
                    count=self._counts[index],
                )
            )
        result.append(
            HistogramBin(
                low=self._num_bins * self._bin_width, high=float("inf"),
                count=self._counts[self._num_bins],
            )
        )
        return result

    def fraction_below(self, threshold: float) -> float:
        """Fraction of recorded values strictly below ``threshold``.

        This is the statistic the paper quotes ("87% of queries within 150 ms",
        "59% served from a distance within 100 ms").  Values are attributed to
        bins, so the threshold is effectively rounded down to a bin boundary.
        """
        if self._total == 0:
            return 0.0
        full_bins = int(threshold // self._bin_width)
        below = sum(self._counts[: min(full_bins, self._num_bins)])
        return below / self._total

    def fraction_above(self, threshold: float) -> float:
        """Fraction of recorded values at or above ``threshold`` (bin-aligned)."""
        if self._total == 0:
            return 0.0
        return 1.0 - self.fraction_below(threshold)

    def as_fractions(self) -> List[Tuple[str, float]]:
        """Per-bin (label, fraction) pairs; this is what the figure benches print."""
        if self._total == 0:
            return [(b.label, 0.0) for b in self.bins()]
        return [(b.label, b.count / self._total) for b in self.bins()]

    def as_dict(self) -> Dict[str, int]:
        return {b.label: b.count for b in self.bins()}
