"""Resilience metrics: how the system behaves across a fault window.

The reachability layer (``repro.network.reachability``) injects network
faults with explicit ``(start, end)`` episodes; this module turns the
windowed hit-ratio series of such a run into the headline numbers the
resilience scenarios golden-check:

* ``resilience_hit_ratio_pre_fault`` — steady-state hit ratio just before
  the first fault window (mean of the trailing pre-fault windows, so the
  cold-start ramp does not drag it down);
* ``resilience_availability_during_fault`` — mean per-window hit ratio of
  the windows overlapping any fault episode: the availability the system
  sustains while degraded;
* ``resilience_time_to_recover_s`` — time from the last heal until the
  first completed window whose hit ratio is back within
  :data:`RECOVERY_TOLERANCE` of the pre-fault steady state (``-1.0`` when
  the run never recovers, or ends before a post-heal window completes);
* delivery-gate counters (messages blocked, redirection retries that ran
  out, origin-server fallbacks, reconciliation rounds).

Models without a temporal footprint (stationary link loss) report the
counters but ``-1.0`` for the three window-based metrics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network <- core <- metrics)
    from repro.metrics.timeseries import TimeSeries
    from repro.network.reachability import DeliveryStats

__all__ = ["RECOVERY_TOLERANCE", "PRE_FAULT_WINDOW_COUNT", "summarise_resilience"]

#: a post-heal window counts as recovered when its hit ratio is within this
#: absolute distance of the pre-fault steady state
RECOVERY_TOLERANCE = 0.05

#: how many trailing pre-fault windows define the steady-state baseline
PRE_FAULT_WINDOW_COUNT = 3


def _window_metrics(
    series: "TimeSeries",
    fault_windows: Sequence[Tuple[float, float]],
    duration_s: float,
) -> Dict[str, float]:
    width = series.window_s
    means = series.window_means()
    fault_start = min(start for start, _ in fault_windows)
    heal = max(end for _, end in fault_windows)

    pre = [mean for start, mean in means if start + width <= fault_start]
    pre_mean = (
        sum(pre[-PRE_FAULT_WINDOW_COUNT:]) / len(pre[-PRE_FAULT_WINDOW_COUNT:])
        if pre
        else -1.0
    )

    during = [
        mean
        for start, mean in means
        if any(start < end and start + width > begin for begin, end in fault_windows)
    ]
    during_mean = sum(during) / len(during) if during else -1.0

    recovery_s = -1.0
    if pre_mean >= 0.0:
        for start, mean in means:
            if start < heal or start + width > duration_s:
                continue
            if mean >= pre_mean - RECOVERY_TOLERANCE:
                recovery_s = (start + width) - heal
                break
    return {
        "resilience_hit_ratio_pre_fault": pre_mean,
        "resilience_availability_during_fault": during_mean,
        "resilience_time_to_recover_s": recovery_s,
    }


def summarise_resilience(
    hit_ratio_series: "TimeSeries",
    fault_windows: Sequence[Tuple[float, float]],
    duration_s: float,
    stats: "DeliveryStats",
) -> Dict[str, float]:
    """The ``resilience_*`` headline block for one faulted run."""
    summary: Dict[str, float] = {
        "resilience_messages_blocked": stats.total_blocked,
        "resilience_retries_exhausted": stats.retries_exhausted,
        "resilience_server_fallbacks": stats.server_fallbacks,
        "resilience_reconciliations": stats.reconciliations,
    }
    if fault_windows:
        summary.update(_window_metrics(hit_ratio_series, fault_windows, duration_s))
    else:
        summary.update(
            {
                "resilience_hit_ratio_pre_fault": -1.0,
                "resilience_availability_during_fault": -1.0,
                "resilience_time_to_recover_s": -1.0,
            }
        )
    return summary
