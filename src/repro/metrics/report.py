"""Plain-text result formatting.

The benchmark harness prints the same rows/series the paper reports; these
helpers render aligned ASCII tables without any third-party dependency so the
output of ``pytest benchmarks/ --benchmark-only`` is directly comparable with
the paper's tables and figure descriptions.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render a simple aligned table as a string."""
    materialised: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def percentiles_table(
    name: str, values: Sequence[float], percentiles: Sequence[float] = (50, 75, 90, 95, 99)
) -> str:
    """Render a one-line percentile summary for a list of samples."""
    if not values:
        return f"{name}: no samples"
    ordered = sorted(values)
    cells: List[Tuple[str, float]] = [("mean", sum(ordered) / len(ordered))]
    for p in percentiles:
        index = min(len(ordered) - 1, max(0, int(round((p / 100.0) * (len(ordered) - 1)))))
        cells.append((f"p{int(p)}", ordered[index]))
    rendered = ", ".join(f"{label}={value:.1f}" for label, value in cells)
    return f"{name}: n={len(ordered)}, {rendered}"


def format_series(title: str, points: Sequence[Tuple[float, float]], x_label: str = "t(s)",
                  y_label: str = "value") -> str:
    """Render a (time, value) series as a compact two-column table."""
    return format_table([x_label, y_label], [(f"{x:.0f}", y) for x, y in points], title=title)
