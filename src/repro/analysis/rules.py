"""Rule framework and registry for the static-analysis engine.

A rule is a named check over one module's AST.  Rules self-register via
:func:`register_rule`, so adding a rule is: subclass :class:`Rule`, give it
a unique ``rule_id``, implement :meth:`check`, and register an instance
(see :mod:`repro.analysis.builtin` for the determinism rules and
``docs/determinism.md`` for the authoring guide).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.findings import RULE_ID_PATTERN, Finding


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule may inspect about the module under analysis."""

    path: str
    tree: ast.Module
    source_lines: Tuple[str, ...]

    @property
    def repro_parts(self) -> Optional[Tuple[str, ...]]:
        """Module path below the ``repro`` package, or ``None`` outside it.

        ``src/repro/core/system.py`` -> ``("core", "system")``.  Rules use
        this for package scoping (e.g. the perf exemption of DET002), so
        fixture sources analyzed under a virtual path scope identically.
        """
        parts = self.path.replace("\\", "/").split("/")
        if "repro" not in parts:
            return None
        below = parts[parts.index("repro") + 1:]
        if not below:
            return None
        leaf = below[-1]
        if leaf.endswith(".py"):
            leaf = leaf[: -len(".py")]
        return tuple(below[:-1]) + (leaf,)

    def package(self) -> Optional[str]:
        """Top-level ``repro`` sub-package of this module (``"core"``, ...)."""
        parts = self.repro_parts
        if parts is None:
            return None
        return parts[0] if len(parts) > 1 else parts[0]


class Rule:
    """Base class for analysis rules.

    Subclasses set ``rule_id`` (``ABC123`` shape), a one-line ``title`` and
    a ``rationale`` (shown by ``repro analyze --list-rules`` and quoted in
    ``docs/determinism.md``), then implement :meth:`check` yielding
    ``(node-or-location, message)`` pairs.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, context: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        raise NotImplementedError

    def findings(self, context: ModuleContext) -> List[Finding]:
        results: List[Finding] = []
        for node, message in self.check(context):
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0) + 1
            results.append(
                Finding(
                    path=context.path,
                    line=line,
                    column=column,
                    rule=self.rule_id,
                    message=message,
                )
            )
        return results


_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Add ``rule`` to the global registry (unique, well-formed id required)."""
    if not RULE_ID_PATTERN.match(rule.rule_id or ""):
        raise ValueError(
            f"rule id {rule.rule_id!r} does not match the ABC123 shape"
        )
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return rule


def iter_rules() -> Iterable[Rule]:
    """All registered rules, ordered by rule id."""
    return tuple(rule for _, rule in sorted(_REGISTRY.items()))


def rule_ids() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"unknown rule {rule_id!r}; registered: {known}") from None
