"""Findings and suppression comments for the static-analysis engine.

A :class:`Finding` anchors one rule violation to a file, line and column.
Suppressions are source comments of the form::

    do_something()  # repro: allow(DET002)
    # repro: allow(DET003, DET005)
    iterate_the_set()

written either on the offending line itself or as a standalone comment on
the line directly above it.  Every suppression must name at least one rule
id — a bare ``# repro: allow`` (or an unknown id) is itself reported as a
finding so silencing the analyzer always leaves an auditable trail.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: rule ids look like ``DET001`` / ``ANA100``: three upper-case letters, three digits.
RULE_ID_PATTERN = re.compile(r"^[A-Z]{3}\d{3}$")

#: a well-formed suppression comment names one or more rule ids in parens.
_ALLOW_PATTERN = re.compile(r"#\s*repro:\s*allow\s*(?:\(([^)]*)\))?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation anchored to a source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One ``# repro: allow(...)`` comment and the lines it covers."""

    line: int
    rules: Tuple[str, ...]
    covered_lines: Tuple[int, ...]
    used: bool = field(default=False)

    def covers(self, rule: str, line: int) -> bool:
        return rule in self.rules and line in self.covered_lines


@dataclass
class SuppressionIndex:
    """All suppressions of one file plus malformed-comment findings."""

    suppressions: List[Suppression]
    errors: List[Tuple[int, int, str, str]]  # (line, column, rule, message)

    def is_suppressed(self, rule: str, line: int) -> bool:
        hit = False
        for suppression in self.suppressions:
            if suppression.covers(rule, line):
                suppression.used = True
                hit = True
        return hit

    def unused(self) -> List[Suppression]:
        return [entry for entry in self.suppressions if not entry.used]


def _iter_comments(source: str) -> Iterable[Tuple[int, int, str, bool]]:
    """Yield ``(line, column, text, standalone)`` for each comment token.

    ``standalone`` is true when the comment is the only content on its line.
    Tokenization errors (the engine reports syntax errors separately) yield
    nothing.
    """
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        row, col = token.start
        prefix = lines[row - 1][:col] if row - 1 < len(lines) else ""
        yield row, col, token.string, not prefix.strip()


def _next_code_line(line: int, source_lines: List[str]) -> Optional[int]:
    """First line after ``line`` that holds code (skipping blanks/comments)."""
    for offset in range(line, len(source_lines)):
        text = source_lines[offset].strip()
        if text and not text.startswith("#"):
            return offset + 1
    return None


def collect_suppressions(source: str, known_rules: Iterable[str]) -> SuppressionIndex:
    """Parse every ``# repro: allow(...)`` comment of ``source``.

    Malformed comments (no parentheses, empty id list, ids that do not look
    like rule ids, or ids not present in ``known_rules``) are recorded as
    engine findings ``ANA100`` / ``ANA101`` rather than silently ignored.
    """
    known = frozenset(known_rules)
    source_lines = source.splitlines()
    index = SuppressionIndex(suppressions=[], errors=[])
    for line, column, text, standalone in _iter_comments(source):
        match = _ALLOW_PATTERN.search(text)
        if match is None:
            if re.search(r"#\s*repro:", text):
                index.errors.append(
                    (line, column, "ANA100",
                     "unrecognized `# repro:` directive; "
                     "use `# repro: allow(RULE-ID)`")
                )
            continue
        body = match.group(1)
        if body is None or not body.strip():
            index.errors.append(
                (line, column, "ANA100",
                 "suppression must name at least one rule id: "
                 "`# repro: allow(RULE-ID)`")
            )
            continue
        rules: List[str] = []
        for raw in body.split(","):
            rule_id = raw.strip()
            if not RULE_ID_PATTERN.match(rule_id):
                index.errors.append(
                    (line, column, "ANA100",
                     f"malformed rule id {rule_id!r} in suppression")
                )
            elif rule_id not in known:
                index.errors.append(
                    (line, column, "ANA101",
                     f"suppression names unknown rule {rule_id!r}")
                )
            else:
                rules.append(rule_id)
        if not rules:
            continue
        covered = [line]
        if standalone:
            next_line = _next_code_line(line, source_lines)
            if next_line is not None:
                covered.append(next_line)
        index.suppressions.append(
            Suppression(line=line, rules=tuple(rules), covered_lines=tuple(covered))
        )
    return index
