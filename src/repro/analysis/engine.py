"""File discovery, per-module analysis and report aggregation.

The engine parses each Python file once, runs every registered rule over
the AST, applies ``# repro: allow(RULE-ID)`` suppressions and folds the
results into an :class:`AnalysisReport` (text- and JSON-renderable, exit
code 1 when unsuppressed findings remain).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis import builtin  # noqa: F401  (registers the DET rules)
from repro.analysis.findings import Finding, collect_suppressions
from repro.analysis.rules import ModuleContext, Rule, iter_rules, rule_ids

#: directory names never descended into during discovery.  The analysis
#: test fixtures are deliberate rule violations, so a tree-wide run must
#: not pick them up (the meta-tests analyze them explicitly by file path).
EXCLUDED_DIR_NAMES = frozenset(
    {
        ".git",
        "__pycache__",
        ".mypy_cache",
        ".ruff_cache",
        ".pytest_cache",
        "analysis_fixtures",
    }
)


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list.

    Directories are walked recursively, skipping :data:`EXCLUDED_DIR_NAMES`;
    explicitly named files are always included (that is how the fixture
    tests target deliberate violations).
    """
    seen = set()
    results: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not EXCLUDED_DIR_NAMES.intersection(candidate.parts)
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                results.append(candidate)
    return results


@dataclass
class AnalysisReport:
    """Aggregated result of one analysis run."""

    files: Tuple[str, ...] = ()
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def extend(self, other: "AnalysisReport") -> None:
        self.files = self.files + other.files
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)

    def sort(self) -> None:
        self.findings.sort()
        self.suppressed.sort()

    def to_dict(self) -> dict:
        return {
            "files_analyzed": len(self.files),
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
            "ok": self.ok,
        }

    def format_text(self) -> str:
        lines = [finding.format() for finding in self.findings]
        lines.append(
            f"{len(self.files)} file(s) analyzed: "
            f"{len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> AnalysisReport:
    """Analyze one module's source under a (possibly virtual) ``path``.

    The path determines package scoping (e.g. DET003 only fires under
    ``repro/core|sim|workload|overlay``), so fixtures can opt into a scope
    by being analyzed under a virtual ``src/repro/<pkg>/...`` path.
    """
    check_unused = rules is None
    active_rules: Sequence[Rule] = tuple(rules) if rules is not None else tuple(
        iter_rules()
    )
    report = AnalysisReport(files=(path,))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        report.findings.append(
            Finding(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 0) + 1,
                rule="ANA000",
                message=f"syntax error: {error.msg}",
            )
        )
        return report
    suppressions = collect_suppressions(source, known_rules=rule_ids())
    for line, column, rule_id, message in suppressions.errors:
        report.findings.append(
            Finding(path=path, line=line, column=column + 1, rule=rule_id,
                    message=message)
        )
    context = ModuleContext(
        path=path, tree=tree, source_lines=tuple(source.splitlines())
    )
    for rule in active_rules:
        for finding in rule.findings(context):
            if suppressions.is_suppressed(finding.rule, finding.line):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    # An unused suppression is only decidable when the full rule set ran
    # (under a --rules filter the suppressed rule may simply be inactive).
    for unused in suppressions.unused() if check_unused else ():
        report.findings.append(
            Finding(
                path=path,
                line=unused.line,
                column=1,
                rule="ANA102",
                message=(
                    "suppression for "
                    + ", ".join(unused.rules)
                    + " matches no finding on its line; remove it"
                ),
            )
        )
    report.sort()
    return report


def analyze_file(
    path: Path,
    rules: Optional[Sequence[Rule]] = None,
    display_root: Optional[Path] = None,
) -> AnalysisReport:
    """Analyze one file; findings use paths relative to ``display_root``."""
    display = path
    if display_root is not None:
        try:
            display = path.resolve().relative_to(display_root.resolve())
        except ValueError:
            display = path
    source = path.read_text(encoding="utf-8")
    return analyze_source(source, path=display.as_posix(), rules=rules)


def analyze_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    display_root: Optional[Path] = None,
) -> AnalysisReport:
    """Analyze every Python file under ``paths`` into one sorted report."""
    report = AnalysisReport()
    for file_path in iter_python_files(list(paths)):
        report.extend(analyze_file(file_path, rules=rules,
                                   display_root=display_root))
    report.sort()
    return report
