"""Built-in determinism and invariant rules (DET001..DET006).

Each rule encodes one invariant the reproduction's golden regression relies
on; ``docs/determinism.md`` catalogues them with rationale and real
before/after examples.  The rules are registered at import time, so simply
importing :mod:`repro.analysis` makes them available to the engine.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.rules import ModuleContext, Rule, register_rule

#: packages whose draw/merge paths feed the goldens (DET003 scope).
ORDERED_ITERATION_PACKAGES = frozenset({"core", "sim", "workload", "overlay"})

#: packages whose value classes sit on the event hot path (DET005 scope).
HOT_PATH_PACKAGES = frozenset(
    {"core", "sim", "datastructures", "workload", "overlay"}
)

#: the only package allowed to read the wall clock (perf measurement).
WALL_CLOCK_EXEMPT_PACKAGES = frozenset({"perf"})


def _dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Resolve ``a.b.c`` chains to ``("a", "b", "c")``; None otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _import_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Local names bound to ``import <module>`` (honouring ``as`` aliases)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _from_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """``{local_name: original_name}`` for ``from <module> import ...``."""
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names[alias.asname or alias.name] = alias.name
    return names


class NoGlobalRandomRule(Rule):
    """DET001: all randomness must flow through injected, seeded streams."""

    rule_id = "DET001"
    title = "no module-level `random` / unseeded Random()"
    rationale = (
        "Module-level `random.*` draws share one hidden global stream and "
        "an unseeded `Random()` seeds from OS entropy; both break "
        "(configuration, seed) -> output determinism.  Use an injected "
        "`random.Random` or a named `RandomStreams` stream."
    )

    def check(self, context: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        tree = context.tree
        aliases = _import_aliases(tree, "random")
        from_names = _from_imports(tree, "random")
        for local, original in from_names.items():
            if original != "Random":
                for node in ast.walk(tree):
                    if (
                        isinstance(node, ast.ImportFrom)
                        and node.module == "random"
                        and any((a.asname or a.name) == local for a in node.names)
                    ):
                        yield node, (
                            f"`from random import {original}` binds the "
                            "module-level global stream; import Random and "
                            "seed it explicitly"
                        )
                        break
        random_class_names = {
            local for local, original in from_names.items() if original == "Random"
        }
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                if func.value.id in aliases:
                    if func.attr == "Random":
                        if not node.args and not node.keywords:
                            yield node, (
                                "unseeded `random.Random()` draws its seed "
                                "from OS entropy; pass an explicit seed"
                            )
                    else:
                        yield node, (
                            f"`random.{func.attr}(...)` uses the global "
                            "module-level stream; draw from an injected "
                            "Random or a named stream instead"
                        )
            elif isinstance(func, ast.Name) and func.id in random_class_names:
                if not node.args and not node.keywords:
                    yield node, (
                        "unseeded `Random()` draws its seed from OS "
                        "entropy; pass an explicit seed"
                    )


#: canonical dotted names that read the wall clock / monotonic clocks.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class NoWallClockRule(Rule):
    """DET002: simulated time only — the wall clock is for the perf package."""

    rule_id = "DET002"
    title = "no wall-clock reads outside repro.perf"
    rationale = (
        "Simulation logic must depend on simulated time alone; "
        "`time.time()` / `time.monotonic()` / `datetime.now()` make runs "
        "irreproducible.  Wall-clock measurement belongs to the perf "
        "package (or behind an explicit suppression for pure run-stats)."
    )

    def check(self, context: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        if context.package() in WALL_CLOCK_EXEMPT_PACKAGES:
            return
        tree = context.tree
        alias_map: Dict[str, str] = {}
        for module in ("time", "datetime"):
            for alias in _import_aliases(tree, module):
                alias_map[alias] = module
        for local, original in _from_imports(tree, "datetime").items():
            alias_map[local] = f"datetime.{original}"
        for local, original in _from_imports(tree, "time").items():
            if f"time.{original}" in _WALL_CLOCK_CALLS:
                alias_map[local] = f"time.{original}"
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            head, rest = dotted[0], dotted[1:]
            canonical = ".".join((alias_map.get(head, head),) + rest)
            if canonical in _WALL_CLOCK_CALLS:
                yield node, (
                    f"`{canonical}(...)` reads the wall clock; simulation "
                    "code must use simulated time (wall-clock measurement "
                    "lives in repro.perf)"
                )


def _iter_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module itself plus every (nested) function definition."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function scopes.

    Class bodies are traversed (their statements execute in the enclosing
    module scope) but the methods inside them are separate scopes.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_set_expression(node: ast.AST) -> bool:
    """Syntactically set-valued (or ``dict.keys()``) expressions."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        }:
            return _is_set_expression(node.func.value)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _is_set_annotation(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    dotted = _dotted_name(annotation)
    if dotted is None:
        return False
    return dotted[-1] in {"set", "frozenset", "Set", "FrozenSet", "AbstractSet"}


class OrderedIterationRule(Rule):
    """DET003: iteration order over unordered collections must be pinned."""

    rule_id = "DET003"
    title = "no bare set/frozenset/dict.keys() iteration in draw/merge packages"
    rationale = (
        "Set iteration order follows hash order (salted for str keys), so "
        "any draw, merge or schedule derived from it differs between "
        "interpreter runs.  Inside core/, sim/, workload/ and overlay/, "
        "wrap the iterable in `sorted(...)` (or iterate an ordered "
        "structure) before it feeds a draw or merge."
    )

    def check(self, context: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        if context.package() not in ORDERED_ITERATION_PACKAGES:
            return
        for scope in _iter_scopes(context.tree):
            yield from self._check_scope(scope)

    def _check_scope(self, scope: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
        set_names: Set[str] = set()
        ambiguous: Set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            all_args = (
                scope.args.posonlyargs + scope.args.args + scope.args.kwonlyargs
            )
            for arg in all_args:
                if _is_set_annotation(arg.annotation):
                    set_names.add(arg.arg)
                elif arg.annotation is not None:
                    ambiguous.add(arg.arg)
        for node in _walk_scope(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if _is_set_expression(node.value):
                            set_names.add(target.id)
                        else:
                            ambiguous.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _is_set_annotation(node.annotation):
                    set_names.add(node.target.id)
                else:
                    ambiguous.add(node.target.id)
        set_names -= ambiguous

        def is_unordered(expr: ast.AST) -> bool:
            if _is_set_expression(expr):
                return True
            return isinstance(expr, ast.Name) and expr.id in set_names

        def describe(expr: ast.AST) -> str:
            if isinstance(expr, ast.Call) and isinstance(
                expr.func, ast.Attribute
            ) and expr.func.attr == "keys":
                return "`.keys()` view"
            if isinstance(expr, ast.Name):
                return f"set-valued name `{expr.id}`"
            return "set expression"

        for node in _walk_scope(scope):
            iterables: List[ast.AST] = []
            if isinstance(node, ast.For):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                                   ast.DictComp)):
                iterables.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in {"list", "tuple", "iter", "enumerate"} and (
                    len(node.args) == 1
                ):
                    iterables.append(node.args[0])
            for expr in iterables:
                if is_unordered(expr):
                    yield expr, (
                        f"iteration over {describe(expr)} has "
                        "non-deterministic order on a draw/merge path; wrap "
                        "in `sorted(...)` or iterate an ordered structure"
                    )


#: RandomStreams convenience wrappers whose first argument is a stream name.
_STREAM_WRAPPERS = frozenset(
    {"uniform", "randint", "choice", "sample", "shuffle", "expovariate", "random"}
)

_UNORDERED_NAME_BUILDERS = frozenset({"set", "frozenset", "hash", "id"})


def _name_expression_taint(expr: ast.AST) -> Optional[str]:
    """Why a stream-name expression is non-deterministic, or ``None``."""
    for node in ast.walk(expr):
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set display"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in _UNORDERED_NAME_BUILDERS:
                return f"`{node.func.id}(...)`"
    return None


class StreamNameRule(Rule):
    """DET004: stream names must be stable across runs and processes."""

    rule_id = "DET004"
    title = "RNG stream names must be literal or built from ordered parts"
    rationale = (
        "Stream seeds are sha-derived from the stream *name*; a name built "
        "from a set display, `hash()` or `id()` differs between runs (hash "
        "salting) or processes (object identity), silently rescoping the "
        "stream.  Build names from literals and ordered, stable fields."
    )

    def _stream_name_argument(self, node: ast.Call) -> Optional[ast.AST]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "stream":
            if node.args:
                return node.args[0]
            for keyword in node.keywords:
                if keyword.arg == "name":
                    return keyword.value
            return None
        dotted = _dotted_name(func)
        if dotted is not None and dotted[-1] == "derive_seed":
            if len(node.args) >= 2:
                return node.args[1]
            for keyword in node.keywords:
                if keyword.arg == "name":
                    return keyword.value
            return None
        if isinstance(func, ast.Attribute) and func.attr in _STREAM_WRAPPERS:
            if node.args and isinstance(
                node.args[0], (ast.JoinedStr, ast.Constant)
            ):
                first = node.args[0]
                if isinstance(first, ast.Constant) and not isinstance(
                    first.value, str
                ):
                    return None
                return first
        return None

    def check(self, context: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name_expr = self._stream_name_argument(node)
            if name_expr is None:
                continue
            if isinstance(name_expr, ast.Constant):
                continue
            taint = _name_expression_taint(name_expr)
            if taint is not None:
                yield name_expr, (
                    f"RNG stream name is built from {taint}, which is not "
                    "stable across runs/processes; use literals and "
                    "ordered, stable fields"
                )


def _init_is_simple_value_init(init: ast.FunctionDef) -> bool:
    """True when ``__init__`` only validates and assigns ``self.*`` fields."""

    def statement_ok(stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            return True  # docstring
        if isinstance(stmt, (ast.Assert, ast.Raise, ast.Pass)):
            return True
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                elements = (
                    target.elts if isinstance(target, ast.Tuple) else [target]
                )
                for element in elements:
                    if not (
                        isinstance(element, ast.Attribute)
                        and isinstance(element.value, ast.Name)
                        and element.value.id == "self"
                    ):
                        return False
            return True
        if isinstance(stmt, ast.If):
            return all(statement_ok(s) for s in stmt.body + stmt.orelse)
        return False

    return all(statement_ok(stmt) for stmt in init.body)


class SlotsRule(Rule):
    """DET005: hot-path value classes must declare ``__slots__``."""

    rule_id = "DET005"
    title = "hot-path value classes must declare __slots__"
    rationale = (
        "Value objects on the event hot path are allocated millions of "
        "times per run; a per-instance `__dict__` costs ~3x the memory and "
        "measurably slows attribute access.  Classes whose `__init__` only "
        "assigns fields must declare `__slots__` (see docs/performance.md)."
    )

    def check(self, context: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        if context.package() not in HOT_PATH_PACKAGES:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.bases or node.keywords or node.decorator_list:
                continue  # bases/decorators may legitimately require __dict__
            init: Optional[ast.FunctionDef] = None
            has_slots = False
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
                    init = stmt
                for target_holder in (
                    stmt.targets if isinstance(stmt, ast.Assign) else []
                ):
                    if (
                        isinstance(target_holder, ast.Name)
                        and target_holder.id == "__slots__"
                    ):
                        has_slots = True
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"
                ):
                    has_slots = True
            if init is None or has_slots:
                continue
            if _init_is_simple_value_init(init):
                yield node, (
                    f"value class `{node.name}` in a hot-path package has a "
                    "field-assigning __init__ but no __slots__ declaration"
                )


#: constructors whose call as a default argument shares one mutable instance.
_MUTABLE_FACTORIES = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "deque",
        "defaultdict",
        "Counter",
        "OrderedDict",
    }
)


class MutableDefaultRule(Rule):
    """DET006: no mutable default arguments."""

    rule_id = "DET006"
    title = "no mutable default arguments"
    rationale = (
        "A mutable default is created once at definition time and shared "
        "by every call; state leaking between calls is both a correctness "
        "bug and a determinism hazard (call order changes outcomes).  Use "
        "`None` and construct inside the function."
    )

    def check(self, context: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                mutable: Optional[str] = None
                if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                    mutable = {
                        ast.List: "list",
                        ast.Dict: "dict",
                        ast.Set: "set",
                    }[type(default)] + " display"
                elif isinstance(default, (ast.ListComp, ast.SetComp, ast.DictComp)):
                    mutable = "comprehension"
                elif isinstance(default, ast.Call) and isinstance(
                    default.func, ast.Name
                ):
                    if default.func.id in _MUTABLE_FACTORIES:
                        mutable = f"`{default.func.id}(...)` call"
                if mutable is not None:
                    yield default, (
                        f"mutable default argument ({mutable}) is shared "
                        "between calls; default to None and construct "
                        "inside the function"
                    )


#: the built-in rule set, registered on import.
BUILTIN_RULES = tuple(
    register_rule(rule)
    for rule in (
        NoGlobalRandomRule(),
        NoWallClockRule(),
        OrderedIterationRule(),
        StreamNameRule(),
        SlotsRule(),
        MutableDefaultRule(),
    )
)
