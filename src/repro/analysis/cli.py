"""The ``repro analyze`` verb: lint the tree against the determinism rules.

Usage (also reachable as ``python -m repro.analysis``)::

    repro analyze                        # full src/ pass, text output
    repro analyze --format json src/     # machine-readable (CI)
    repro analyze --changed              # fast path: only files in the
                                         # working-tree diff (pre-commit)
    repro analyze --list-rules           # the rule catalogue
    repro analyze --rules DET003,DET006  # run a subset of rules

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import IO, List, Optional, Sequence

from repro.analysis.engine import EXCLUDED_DIR_NAMES, analyze_paths
from repro.analysis.rules import get_rule, iter_rules


def add_analyze_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the ``analyze`` options (shared by repro.cli and __main__)."""
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to analyze (default: src/)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="analyze only files reported changed by git (diff vs HEAD "
             "plus untracked), restricted to PATH roots — the pre-commit "
             "fast path",
    )
    parser.add_argument(
        "--rules", type=str, default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue (id, title, rationale) and exit",
    )


def changed_python_files(root: Path) -> List[Path]:
    """Python files changed vs HEAD (staged + unstaged) plus untracked ones."""
    commands = (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    names: List[str] = []
    for command in commands:
        completed = subprocess.run(
            command, cwd=root, capture_output=True, text=True, check=True
        )
        names.extend(completed.stdout.splitlines())
    results: List[Path] = []
    for name in dict.fromkeys(names):  # de-duplicate, keep git's order
        if not name.endswith(".py"):
            continue
        path = root / name
        # --changed is bulk discovery, so the directory exclusions apply
        # (deliberately-violating analyzer fixtures must not fail the run).
        if EXCLUDED_DIR_NAMES.intersection(path.parts):
            continue
        if path.is_file():
            results.append(path)
    return results


def _resolve_changed(
    roots: Sequence[Path], out_error: IO[str]
) -> Optional[List[Path]]:
    try:
        repo_root = Path(
            subprocess.run(
                ["git", "rev-parse", "--show-toplevel"],
                capture_output=True, text=True, check=True,
            ).stdout.strip()
        )
        changed = changed_python_files(repo_root)
    except (subprocess.CalledProcessError, OSError) as error:
        print(f"error: --changed requires a git checkout: {error}",
              file=out_error)
        return None
    resolved_roots = [root.resolve() for root in roots]
    selected = []
    for path in changed:
        resolved = path.resolve()
        if any(
            resolved == root or root in resolved.parents
            for root in resolved_roots
        ):
            selected.append(path)
    return selected


def run_analyze(args: argparse.Namespace, out: IO[str]) -> int:
    """Execute the ``analyze`` verb against a parsed namespace."""
    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.rule_id}  {rule.title}", file=out)
            print(f"        {rule.rationale}", file=out)
        return 0
    rules = None
    if args.rules:
        try:
            rules = [get_rule(rule_id.strip())
                     for rule_id in args.rules.split(",") if rule_id.strip()]
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        if not rules:
            print("error: --rules needs at least one rule id", file=sys.stderr)
            return 2
    roots = [Path(path) for path in (args.paths or ["src"])]
    for root in roots:
        if not root.exists():
            print(f"error: no such path: {root}", file=sys.stderr)
            return 2
    if args.changed:
        selected = _resolve_changed(roots, sys.stderr)
        if selected is None:
            return 2
        targets: Sequence[Path] = selected
    else:
        targets = roots
    report = analyze_paths(targets, rules=rules, display_root=Path.cwd())
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(report.format_text(), file=out)
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None, out: Optional[IO[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="static determinism/invariant analysis "
                    "(see docs/determinism.md)",
    )
    add_analyze_arguments(parser)
    return run_analyze(parser.parse_args(argv),
                       out if out is not None else sys.stdout)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
