"""``python -m repro.analysis`` — standalone entry to the analyze CLI."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
