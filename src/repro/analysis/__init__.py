"""Static determinism/invariant analysis for the reproduction.

An AST-based lint engine that enforces the invariants the golden
regression suite otherwise only catches after a full re-run: named RNG
streams, no wall-clock reads, ordered iteration on draw/merge paths,
``__slots__`` on hot-path value classes and no mutable defaults.  See
``docs/determinism.md`` for the rule catalogue and suppression syntax.

Entry points: the ``repro analyze`` CLI verb, ``python -m repro.analysis``
and the programmatic API below.
"""

from __future__ import annotations

from repro.analysis.builtin import BUILTIN_RULES
from repro.analysis.engine import (
    AnalysisReport,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.analysis.findings import Finding, Suppression, collect_suppressions
from repro.analysis.rules import (
    ModuleContext,
    Rule,
    get_rule,
    iter_rules,
    register_rule,
    rule_ids,
)

__all__ = [
    "AnalysisReport",
    "BUILTIN_RULES",
    "Finding",
    "ModuleContext",
    "Rule",
    "Suppression",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "collect_suppressions",
    "get_rule",
    "iter_python_files",
    "iter_rules",
    "register_rule",
    "rule_ids",
]
