"""Deterministic scenario harness.

A *scenario* is a declarative, named description of one end-to-end workload
(:class:`~repro.scenarios.spec.ScenarioSpec`); the
:class:`~repro.scenarios.runner.ScenarioRunner` composes the simulator,
topology and CDN systems from it and returns a structured, byte-for-byte
reproducible :class:`~repro.scenarios.runner.ScenarioResult`.  The library
(:mod:`repro.scenarios.library`) names the canonical workloads, and
:mod:`repro.scenarios.golden` pins their headline metrics against committed
golden files.
"""

from repro.scenarios.spec import ChurnProfile, ScenarioSpec
from repro.scenarios.program import WorkloadPhase, compile_program
from repro.scenarios.models import (
    ModelRef,
    churn_model_names,
    fault_model_names,
    register_churn_model,
    register_fault_model,
)
from repro.scenarios.runner import (
    ScenarioResult,
    ScenarioRunner,
    SystemResult,
    run_scenario,
    summarise_system,
)
from repro.scenarios.library import (
    PAPER_DEFAULT,
    get_scenario,
    iter_scenarios,
    paper_default_full_scale,
    register_scenario,
    scenario_names,
    unregister_scenario,
)

__all__ = [
    "ChurnProfile",
    "ScenarioSpec",
    "WorkloadPhase",
    "compile_program",
    "ModelRef",
    "churn_model_names",
    "fault_model_names",
    "register_churn_model",
    "register_fault_model",
    "ScenarioResult",
    "ScenarioRunner",
    "SystemResult",
    "run_scenario",
    "summarise_system",
    "PAPER_DEFAULT",
    "get_scenario",
    "iter_scenarios",
    "paper_default_full_scale",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
]
