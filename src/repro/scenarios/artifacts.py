"""Scenario run artifact bundle: one result, one on-disk layout.

A single scenario run renders to a small fixed *bundle* of files:

* ``digest.json``  — the golden-rounded metrics digest (exactly what
  ``repro scenarios run NAME`` prints, and what goldens commit);
* ``result.json``  — the full-precision :meth:`ScenarioResult.to_dict`
  document including every metric series (the byte-identity witness);
* ``series.csv``   — every per-system metric series flattened to
  ``system,series,time_s,value`` rows;
* ``summary.md``   — a GitHub-flavoured headline-metrics table.

:func:`run_documents` is the **single serialisation point**: both
``repro scenarios run NAME --out DIR`` and the ``repro serve`` run store
(:mod:`repro.service.store`) write exactly this mapping, so a CLI export and
a service-cached run are byte-for-byte the same bundle.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List

from repro.scenarios.runner import ScenarioResult

__all__ = [
    "ARTIFACT_FILES",
    "DIGEST_FILENAME",
    "RESULT_FILENAME",
    "dumps_json",
    "run_documents",
    "export_run_bundle",
]

#: artifact kind (as exposed by ``GET /runs/{id}/artifacts/{kind}`` and by
#: the documentation) -> bundle filename
ARTIFACT_FILES: Dict[str, str] = {
    "json": "result.json",
    "csv": "series.csv",
    "md": "summary.md",
}
#: the golden-rounded digest document of a bundle
DIGEST_FILENAME = "digest.json"
#: the full-precision result document of a bundle
RESULT_FILENAME = "result.json"


def dumps_json(document: object) -> str:
    """The canonical JSON serialisation used across bundle documents."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def _series_csv(result: ScenarioResult) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["system", "series", "time_s", "value"])
    for system_name, system in result.systems.items():
        for series_name, points in system.series.items():
            for time_s, value in points:
                writer.writerow([system_name, series_name, repr(time_s), repr(value)])
    return buffer.getvalue()


def _summary_md(result: ScenarioResult, scale: float) -> str:
    lines: List[str] = [
        f"# Scenario: {result.spec.name}",
        "",
        result.spec.description.strip() or "(no description)",
        "",
        f"seed: {result.seed} · scale: {scale:g} · "
        f"systems: {', '.join(result.systems)}",
        "",
    ]
    for system_name, system in result.systems.items():
        lines.append(f"## {system_name}")
        lines.append("")
        lines.append("| metric | value |")
        lines.append("| --- | --- |")
        for metric, value in sorted(system.metrics.items()):
            lines.append(f"| {metric} | {value} |")
        lines.append("")
    return "\n".join(lines)


def run_documents(result: ScenarioResult, scale: float = 1.0) -> Dict[str, str]:
    """The full bundle of one run as ``filename -> file text``.

    Every consumer of the bundle layout (the ``--out`` CLI export and the
    service run store) goes through this function, which is what keeps the
    two on-disk layouts identical by construction.
    """
    from repro.scenarios.golden import result_digest

    return {
        DIGEST_FILENAME: dumps_json(result_digest(result, scale=scale)),
        RESULT_FILENAME: dumps_json(result.to_dict()),
        ARTIFACT_FILES["csv"]: _series_csv(result),
        ARTIFACT_FILES["md"]: _summary_md(result, scale),
    }


def export_run_bundle(
    result: ScenarioResult, out_dir: Path, scale: float = 1.0
) -> List[Path]:
    """Write the run bundle into ``out_dir`` (atomic per file); paths written."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for filename, text in run_documents(result, scale=scale).items():
        path = out_dir / filename
        tmp = out_dir / f".{filename}.tmp"
        tmp.write_text(text, encoding="utf-8")
        tmp.replace(path)
        written.append(path)
    return written
