"""Pluggable churn and fault models for scenario specs.

A :class:`~repro.scenarios.spec.ScenarioSpec` names its dynamicity as
declarative values: a **churn model** (sustained, rate-driven background
dynamics — the Section 5 regime) and a **fault model** (discrete, scheduled
disturbance events such as a correlated locality outage).  Both are resolved
through registries, entry-point style like the simulator's
``KNOWN_QUEUE_BACKENDS``: a model is registered under a name, a spec refers
to it with a :class:`ModelRef` (name + frozen parameters), and the
:class:`~repro.session.Session` builds and attaches the model's injector to
the live system at run time.

Model protocol
--------------

A model class is constructed from the ``ModelRef`` parameters and exposes::

    def attach(self, system, spec) -> injector-or-None

where the returned injector has ``start()`` / ``stop()`` (and, by
convention, a ``log`` of :class:`~repro.core.churn.ChurnLogEntry` records).
Returning ``None`` means "this model injects nothing for this spec" — the
run then carries zero scheduling or random-stream overhead, which is what
keeps pre-program goldens byte-identical.

Registering a custom model (e.g. from a test or a plugin)::

    from repro.scenarios.models import register_fault_model

    @register_fault_model("my-outage")
    class MyOutage:
        def __init__(self, at_s=600.0):
            self.at_s = at_s
        def attach(self, system, spec):
            ...
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.churn import ChurnInjector, ChurnLogEntry
from repro.sim.process import PeriodicProcess

#: default model names (the behaviour of pre-registry specs)
DEFAULT_CHURN_MODEL = "poisson"
DEFAULT_FAULT_MODEL = "none"


@dataclass(frozen=True)
class ModelRef:
    """A declarative reference to a registered model: name + frozen params.

    Parameters are stored as a sorted tuple of ``(key, value)`` pairs so the
    reference stays hashable inside frozen scenario specs; use
    :meth:`ModelRef.of` to build one from keyword arguments.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(cls, name: str, **params: object) -> "ModelRef":
        return cls(name=name, params=tuple(sorted(params.items())))

    @property
    def kwargs(self) -> Dict[str, object]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "params": self.kwargs}


# -- registries ---------------------------------------------------------------

_CHURN_MODELS: Dict[str, Callable] = {}
_FAULT_MODELS: Dict[str, Callable] = {}


def register_churn_model(name: str, factory: Optional[Callable] = None, *, overwrite: bool = False):
    """Register a churn-model factory (usable as a decorator)."""
    return _register(_CHURN_MODELS, "churn", name, factory, overwrite)


def register_fault_model(name: str, factory: Optional[Callable] = None, *, overwrite: bool = False):
    """Register a fault-model factory (usable as a decorator)."""
    return _register(_FAULT_MODELS, "fault", name, factory, overwrite)


def _register(registry: Dict[str, Callable], kind: str, name: str,
              factory: Optional[Callable], overwrite: bool):
    def add(target: Callable) -> Callable:
        if name in registry and not overwrite:
            raise ValueError(f"{kind} model {name!r} is already registered")
        registry[name] = target
        return target

    return add if factory is None else add(factory)


def unregister_churn_model(name: str) -> None:
    _CHURN_MODELS.pop(name, None)


def unregister_fault_model(name: str) -> None:
    _FAULT_MODELS.pop(name, None)


def churn_model_names() -> List[str]:
    return sorted(_CHURN_MODELS)


def fault_model_names() -> List[str]:
    return sorted(_FAULT_MODELS)


def build_churn_model(ref: ModelRef):
    return _build(_CHURN_MODELS, "churn", ref)


def build_fault_model(ref: ModelRef):
    return _build(_FAULT_MODELS, "fault", ref)


def _build(registry: Dict[str, Callable], kind: str, ref: ModelRef):
    try:
        factory = registry[ref.name]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise ValueError(
            f"unknown {kind} model {ref.name!r}; registered models: {known}"
        ) from None
    # Reject mismatched parameters against the factory signature *before*
    # calling it, so a TypeError raised inside a (possibly third-party)
    # constructor surfaces as the genuine bug it is instead of being
    # misreported as a ModelRef-argument mistake.
    try:
        inspect.signature(factory).bind(**ref.kwargs)
    except TypeError as error:
        raise ValueError(
            f"invalid parameters for {kind} model {ref.name!r}: {error}"
        ) from None
    return factory(**ref.kwargs)


# -- built-in churn models ----------------------------------------------------


@register_churn_model("none")
class NoChurn:
    """Churn disabled regardless of the spec's churn profile."""

    def attach(self, system, spec):
        return None


@register_churn_model("poisson")
class PoissonChurn:
    """The Section 5 background regime: the spec's :class:`ChurnProfile`
    rates drive the tick-based :class:`~repro.core.churn.ChurnInjector`.

    This is the default model and reproduces the pre-registry behaviour
    exactly; ``tick_period_s`` optionally overrides the injector's wake-up
    period.
    """

    def __init__(self, tick_period_s: Optional[float] = None) -> None:
        if tick_period_s is not None and tick_period_s <= 0:
            raise ValueError("tick_period_s must be positive or None")
        self.tick_period_s = tick_period_s

    def attach(self, system, spec):
        config = spec.churn.to_config()
        if config is None:
            return None
        if self.tick_period_s is not None:
            from dataclasses import replace

            config = replace(config, tick_period_s=self.tick_period_s)
        return ChurnInjector(system, config)


class BurstChurnInjector:
    """Periodic bursts of simultaneous content-peer failures."""

    def __init__(self, system, period_s: float, burst_size: int) -> None:
        self._system = system
        self._period_s = period_s
        self._burst_size = burst_size
        self._process: Optional[PeriodicProcess] = None
        self.log: List[ChurnLogEntry] = []

    def start(self) -> None:
        if self._process is not None:
            return
        self._process = PeriodicProcess(
            self._system.sim,
            self._period_s,
            self._tick,
            name="burst-churn",
            jitter_stream="churn:burst-jitter",
        )
        self._process.start()

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    def _tick(self) -> None:
        system = self._system
        alive = system.alive_content_peer_ids()
        if not alive:
            return
        victims = system.sim.streams.sample(
            "churn:burst-victims", alive, min(self._burst_size, len(alive))
        )
        for victim in victims:
            if system.fail_content_peer(victim):
                self.log.append(
                    ChurnLogEntry(
                        time=system.sim.now, kind="burst_content_failure", target=victim
                    )
                )


@register_churn_model("burst")
class BurstChurn:
    """Content peers fail in periodic correlated bursts instead of a
    smoothly-thinned Poisson stream — the adversarial counterpart of
    ``"poisson"`` (same mechanisms under test, bunchier arrivals)."""

    def __init__(self, period_s: float = 1800.0, burst_size: int = 5) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if burst_size <= 0:
            raise ValueError("burst_size must be positive")
        self.period_s = period_s
        self.burst_size = burst_size

    def attach(self, system, spec):
        return BurstChurnInjector(system, self.period_s, self.burst_size)


# -- built-in fault models ----------------------------------------------------


@register_fault_model("none")
class NoFaults:
    """No scheduled disturbance events (the default)."""

    def attach(self, system, spec):
        return None


@dataclass
class ScheduledFaultInjector:
    """Fires one callback at an absolute simulation time (optionally repeating)."""

    system: object
    at_s: float
    fire: Callable[[], None]
    repeat_every_s: Optional[float] = None
    _events: list = field(default_factory=list)
    log: List[ChurnLogEntry] = field(default_factory=list)

    def start(self) -> None:
        sim = self.system.sim
        if self.repeat_every_s is None:
            self._events.append(sim.at(self.at_s, self.fire, label="fault"))
            return
        # Repeat until the run's horizon: the simulator's end_time when set,
        # otherwise the configured run duration (harnesses that drive
        # `sim.run(until=...)` without an end_time must not silently lose
        # every repeat occurrence).
        horizon = sim.end_time
        if horizon is None:
            horizon = self.system.config.simulation_duration_s
        time = self.at_s
        while time <= horizon:
            self._events.append(sim.at(time, self.fire, label="fault"))
            time += self.repeat_every_s

    def stop(self) -> None:
        for event in self._events:
            if not event.cancelled:
                self.system.sim.cancel(event)
        self._events.clear()


class GossipLossInjector:
    """Drops gossip messages in transit with a fixed probability.

    Attaches to the system's ``gossip_message_filter`` hook; drop decisions
    draw from the dedicated ``"fault:gossip-loss"`` stream, so enabling the
    model never perturbs any other random stream of the run.
    """

    def __init__(self, system, drop_probability: float) -> None:
        self._system = system
        self._drop_probability = drop_probability
        self.dropped = 0
        self.delivered = 0
        self.log: List[ChurnLogEntry] = []

    def start(self) -> None:
        system = self._system
        if system.gossip_message_filter is not None:
            raise RuntimeError("another gossip-message filter is already attached")
        stream = system.sim.streams.stream("fault:gossip-loss")
        probability = self._drop_probability

        def deliver(peer, partner) -> bool:
            if stream.random() < probability:
                self.dropped += 1
                self.log.append(
                    ChurnLogEntry(
                        time=system.sim.now,
                        kind="gossip_message_drop",
                        target=peer.peer_id,
                    )
                )
                return False
            self.delivered += 1
            return True

        system.gossip_message_filter = deliver

    def stop(self) -> None:
        self._system.gossip_message_filter = None


@register_fault_model("gossip-loss")
class GossipLoss:
    """Probabilistic gossip-message loss: each attempted gossip exchange is
    dropped in transit with ``drop_probability`` — the lossy-network regime
    the paper's reliable-delivery assumption glosses over.  Knowledge then
    disseminates only through the surviving exchanges, stressing the same
    view/summary machinery as ``gossip-starved`` but stochastically.
    """

    def __init__(self, drop_probability: float = 0.2) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self.drop_probability = drop_probability

    def attach(self, system, spec):
        if self.drop_probability == 0.0:
            # No loss means no filter and no stream draws: the run stays
            # byte-identical to the "none" fault model.
            return None
        return GossipLossInjector(system, self.drop_probability)


@register_fault_model("correlated-locality")
class CorrelatedLocalityFaults:
    """A correlated locality outage: at ``at_fraction`` of the run, a
    ``fraction`` of the alive content peers of one locality fail *at the same
    instant*, together (optionally) with every directory peer serving that
    locality — the failure pattern of a regional network partition or power
    event, which independent per-peer churn can never produce.
    """

    def __init__(
        self,
        at_fraction: float = 0.5,
        locality: int = 0,
        fraction: float = 0.5,
        include_directories: bool = True,
        repeat_every_s: Optional[float] = None,
    ) -> None:
        if not 0.0 < at_fraction < 1.0:
            raise ValueError("at_fraction must be in (0, 1)")
        if locality < 0:
            raise ValueError("locality must be non-negative")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if repeat_every_s is not None and repeat_every_s <= 0:
            raise ValueError("repeat_every_s must be positive or None")
        self.at_fraction = at_fraction
        self.locality = locality
        self.fraction = fraction
        self.include_directories = include_directories
        self.repeat_every_s = repeat_every_s

    def attach(self, system, spec):
        duration = system.config.simulation_duration_s
        injector = ScheduledFaultInjector(
            system=system,
            at_s=self.at_fraction * duration,
            fire=lambda: None,
            repeat_every_s=self.repeat_every_s,
        )
        injector.fire = lambda: self._fire(system, injector.log)
        return injector

    def _fire(self, system, log: List[ChurnLogEntry]) -> None:
        sim = system.sim
        alive = system.alive_content_peer_ids(self.locality)
        if alive:
            count = min(len(alive), max(1, math.ceil(self.fraction * len(alive))))
            victims = sim.streams.sample("fault:correlated-victims", alive, count)
            for victim in victims:
                if system.fail_content_peer(victim):
                    log.append(
                        ChurnLogEntry(
                            time=sim.now, kind="correlated_content_failure", target=victim
                        )
                    )
        if self.include_directories:
            for website, locality in system.active_directory_pairs(self.locality):
                if system.fail_directory(website, locality):
                    log.append(
                        ChurnLogEntry(
                            time=sim.now,
                            kind="correlated_directory_failure",
                            target=f"({website}, {locality})",
                        )
                    )
