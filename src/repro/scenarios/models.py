"""Pluggable churn and fault models for scenario specs.

A :class:`~repro.scenarios.spec.ScenarioSpec` names its dynamicity as
declarative values: a **churn model** (sustained, rate-driven background
dynamics — the Section 5 regime) and a **fault model** (discrete, scheduled
disturbance events such as a correlated locality outage).  Both are resolved
through registries, entry-point style like the simulator's
``KNOWN_QUEUE_BACKENDS``: a model is registered under a name, a spec refers
to it with a :class:`ModelRef` (name + frozen parameters), and the
:class:`~repro.session.Session` builds and attaches the model's injector to
the live system at run time.

Model protocol
--------------

A model class is constructed from the ``ModelRef`` parameters and exposes::

    def attach(self, system, spec) -> injector-or-None

where the returned injector has ``start()`` / ``stop()`` (and, by
convention, a ``log`` of :class:`~repro.core.churn.ChurnLogEntry` records).
Returning ``None`` means "this model injects nothing for this spec" — the
run then carries zero scheduling or random-stream overhead, which is what
keeps pre-program goldens byte-identical.

Registering a custom model (e.g. from a test or a plugin)::

    from repro.scenarios.models import register_fault_model

    @register_fault_model("my-outage")
    class MyOutage:
        def __init__(self, at_s=600.0):
            self.at_s = at_s
        def attach(
        self, system: "FlowerCDN", spec: "ScenarioSpec"
    ) -> Optional[Injector]:
            ...
"""

from __future__ import annotations

import inspect
import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Protocol, Tuple

if TYPE_CHECKING:
    from repro.core.system import FlowerCDN
    from repro.scenarios.spec import ScenarioSpec

from repro.core.churn import ChurnInjector, ChurnLogEntry
from repro.network.reachability import (
    MESSAGE_KINDS,
    HostOutage,
    LinkLoss,
    LocalityPartition,
    ReachabilityModel,
)
from repro.sim.process import PeriodicProcess

#: default model names (the behaviour of pre-registry specs)
class Injector(Protocol):
    """What ``attach`` returns when a model has work to do: a start/stop
    handle the session drives over the run's lifetime."""

    def start(self) -> None: ...

    def stop(self) -> None: ...


#: a model factory as stored in the registries: called with the ModelRef's
#: keyword parameters, returns the model object exposing ``attach``.
ModelFactory = Callable[..., object]


DEFAULT_CHURN_MODEL = "poisson"
DEFAULT_FAULT_MODEL = "none"


@dataclass(frozen=True)
class ModelRef:
    """A declarative reference to a registered model: name + frozen params.

    Parameters are stored as a sorted tuple of ``(key, value)`` pairs so the
    reference stays hashable inside frozen scenario specs; use
    :meth:`ModelRef.of` to build one from keyword arguments.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(cls, name: str, **params: object) -> "ModelRef":
        return cls(name=name, params=tuple(sorted(params.items())))

    @property
    def kwargs(self) -> Dict[str, object]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "params": self.kwargs}


# -- registries ---------------------------------------------------------------

_CHURN_MODELS: Dict[str, ModelFactory] = {}
_FAULT_MODELS: Dict[str, ModelFactory] = {}


def register_churn_model(
    name: str, factory: Optional[ModelFactory] = None, *, overwrite: bool = False
) -> ModelFactory:
    """Register a churn-model factory (usable as a decorator)."""
    return _register(_CHURN_MODELS, "churn", name, factory, overwrite)


def register_fault_model(
    name: str, factory: Optional[ModelFactory] = None, *, overwrite: bool = False
) -> ModelFactory:
    """Register a fault-model factory (usable as a decorator)."""
    return _register(_FAULT_MODELS, "fault", name, factory, overwrite)


def _register(
    registry: Dict[str, ModelFactory],
    kind: str,
    name: str,
    factory: Optional[ModelFactory],
    overwrite: bool,
) -> ModelFactory:
    def add(target: Callable) -> Callable:
        if name in registry and not overwrite:
            raise ValueError(f"{kind} model {name!r} is already registered")
        registry[name] = target
        return target

    return add if factory is None else add(factory)


def unregister_churn_model(name: str) -> None:
    _CHURN_MODELS.pop(name, None)


def unregister_fault_model(name: str) -> None:
    _FAULT_MODELS.pop(name, None)


def churn_model_names() -> List[str]:
    return sorted(_CHURN_MODELS)


def fault_model_names() -> List[str]:
    return sorted(_FAULT_MODELS)


def churn_model_factories() -> Dict[str, ModelFactory]:
    """Registered churn-model factories by name (for discovery/CLI listings)."""
    return dict(sorted(_CHURN_MODELS.items()))


def fault_model_factories() -> Dict[str, ModelFactory]:
    """Registered fault-model factories by name (for discovery/CLI listings)."""
    return dict(sorted(_FAULT_MODELS.items()))


def build_churn_model(ref: ModelRef) -> object:
    return _build(_CHURN_MODELS, "churn", ref)


def build_fault_model(ref: ModelRef) -> object:
    return _build(_FAULT_MODELS, "fault", ref)


def _build(registry: Dict[str, ModelFactory], kind: str, ref: ModelRef) -> object:
    try:
        factory = registry[ref.name]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise ValueError(
            f"unknown {kind} model {ref.name!r}; registered models: {known}"
        ) from None
    # Reject mismatched parameters against the factory signature *before*
    # calling it, so a TypeError raised inside a (possibly third-party)
    # constructor surfaces as the genuine bug it is instead of being
    # misreported as a ModelRef-argument mistake.
    try:
        inspect.signature(factory).bind(**ref.kwargs)
    except TypeError as error:
        raise ValueError(
            f"invalid parameters for {kind} model {ref.name!r}: {error}"
        ) from None
    return factory(**ref.kwargs)


# -- built-in churn models ----------------------------------------------------


@register_churn_model("none")
class NoChurn:
    """Churn disabled regardless of the spec's churn profile."""

    def attach(
        self, system: "FlowerCDN", spec: "ScenarioSpec"
    ) -> Optional[Injector]:
        return None


@register_churn_model("poisson")
class PoissonChurn:
    """The Section 5 background regime: the spec's :class:`ChurnProfile`
    rates drive the tick-based :class:`~repro.core.churn.ChurnInjector`.

    This is the default model and reproduces the pre-registry behaviour
    exactly; ``tick_period_s`` optionally overrides the injector's wake-up
    period.
    """

    def __init__(self, tick_period_s: Optional[float] = None) -> None:
        if tick_period_s is not None and tick_period_s <= 0:
            raise ValueError("tick_period_s must be positive or None")
        self.tick_period_s = tick_period_s

    def attach(
        self, system: "FlowerCDN", spec: "ScenarioSpec"
    ) -> Optional[Injector]:
        config = spec.churn.to_config()
        if config is None:
            return None
        if self.tick_period_s is not None:
            from dataclasses import replace

            config = replace(config, tick_period_s=self.tick_period_s)
        return ChurnInjector(system, config)


class BurstChurnInjector:
    """Periodic bursts of simultaneous content-peer failures."""

    def __init__(
        self, system: "FlowerCDN", period_s: float, burst_size: int
    ) -> None:
        self._system = system
        self._period_s = period_s
        self._burst_size = burst_size
        self._process: Optional[PeriodicProcess] = None
        self.log: List[ChurnLogEntry] = []

    def start(self) -> None:
        if self._process is not None:
            return
        self._process = PeriodicProcess(
            self._system.sim,
            self._period_s,
            self._tick,
            name="burst-churn",
            jitter_stream="churn:burst-jitter",
        )
        self._process.start()

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    def _tick(self) -> None:
        system = self._system
        alive = system.alive_content_peer_ids()
        if not alive:
            return
        victims = system.sim.streams.sample(
            "churn:burst-victims", alive, min(self._burst_size, len(alive))
        )
        for victim in victims:
            if system.fail_content_peer(victim):
                self.log.append(
                    ChurnLogEntry(
                        time=system.sim.now, kind="burst_content_failure", target=victim
                    )
                )


@register_churn_model("burst")
class BurstChurn:
    """Content peers fail in periodic correlated bursts instead of a
    smoothly-thinned Poisson stream — the adversarial counterpart of
    ``"poisson"`` (same mechanisms under test, bunchier arrivals)."""

    def __init__(self, period_s: float = 1800.0, burst_size: int = 5) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if burst_size <= 0:
            raise ValueError("burst_size must be positive")
        self.period_s = period_s
        self.burst_size = burst_size

    def attach(
        self, system: "FlowerCDN", spec: "ScenarioSpec"
    ) -> Optional[Injector]:
        return BurstChurnInjector(system, self.period_s, self.burst_size)


# -- built-in fault models ----------------------------------------------------


@register_fault_model("none")
class NoFaults:
    """No scheduled disturbance events (the default)."""

    def attach(
        self, system: "FlowerCDN", spec: "ScenarioSpec"
    ) -> Optional[Injector]:
        return None


@dataclass
class ScheduledFaultInjector:
    """Fires one callback at an absolute simulation time (optionally repeating)."""

    system: object
    at_s: float
    fire: Callable[[], None]
    repeat_every_s: Optional[float] = None
    _events: list = field(default_factory=list)
    log: List[ChurnLogEntry] = field(default_factory=list)

    def start(self) -> None:
        sim = self.system.sim
        if self.repeat_every_s is None:
            self._events.append(sim.at(self.at_s, self.fire, label="fault"))
            return
        # Repeat until the run's horizon: the simulator's end_time when set,
        # otherwise the configured run duration (harnesses that drive
        # `sim.run(until=...)` without an end_time must not silently lose
        # every repeat occurrence).
        horizon = sim.end_time
        if horizon is None:
            horizon = self.system.config.simulation_duration_s
        time = self.at_s
        while time <= horizon:
            self._events.append(sim.at(time, self.fire, label="fault"))
            time += self.repeat_every_s

    def stop(self) -> None:
        for event in self._events:
            if not event.cancelled:
                self.system.sim.cancel(event)
        self._events.clear()


class _GossipLossModel(ReachabilityModel):
    """Delivery-gate adapter of the gossip-loss fault: draws only for the
    ``"gossip"`` kind, lets every other message kind through untouched, and
    reports into its owning injector's counters/log.  ``emits_metrics`` is
    off so the pre-reachability ``gossip-lossy`` golden stays byte-identical.
    """

    emits_metrics = False

    def __init__(
        self,
        injector: "GossipLossInjector",
        stream: random.Random,
        probability: float,
    ) -> None:
        self._injector = injector
        self._stream = stream
        self._probability = probability

    def allows(
        self,
        kind: str,
        src_host: int,
        dst_host: int,
        src_id: Optional[str],
        dst_id: Optional[str],
        now: float,
    ) -> bool:
        if kind != "gossip":
            return True
        injector = self._injector
        if self._stream.random() < self._probability:
            injector.dropped += 1
            injector.log.append(
                ChurnLogEntry(time=now, kind="gossip_message_drop", target=src_id)
            )
            return False
        injector.delivered += 1
        return True


class GossipLossInjector:
    """Drops gossip messages in transit with a fixed probability.

    Rides the system-wide delivery gate (message kind ``"gossip"`` only)
    instead of the legacy ``gossip_message_filter`` hook, which remains
    available for ad-hoc callers; drop decisions still draw from the
    dedicated ``"fault:gossip-loss"`` stream in the same order as before,
    so enabling the model never perturbs any other random stream and the
    committed ``gossip-lossy`` golden is reproduced byte for byte.
    """

    def __init__(self, system: "FlowerCDN", drop_probability: float) -> None:
        self._system = system
        self._drop_probability = drop_probability
        self.dropped = 0
        self.delivered = 0
        self.log: List[ChurnLogEntry] = []

    def start(self) -> None:
        system = self._system
        stream = system.sim.streams.stream("fault:gossip-loss")
        system.attach_reachability(
            _GossipLossModel(self, stream, self._drop_probability)
        )

    def stop(self) -> None:
        self._system.detach_reachability()


@register_fault_model("gossip-loss")
class GossipLoss:
    """Probabilistic gossip-message loss: each attempted gossip exchange is
    dropped in transit with ``drop_probability`` — the lossy-network regime
    the paper's reliable-delivery assumption glosses over.  Knowledge then
    disseminates only through the surviving exchanges, stressing the same
    view/summary machinery as ``gossip-starved`` but stochastically.
    """

    def __init__(self, drop_probability: float = 0.2) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self.drop_probability = drop_probability

    def attach(
        self, system: "FlowerCDN", spec: "ScenarioSpec"
    ) -> Optional[Injector]:
        if self.drop_probability == 0.0:
            # No loss means no filter and no stream draws: the run stays
            # byte-identical to the "none" fault model.
            return None
        return GossipLossInjector(system, self.drop_probability)


@register_fault_model("correlated-locality")
class CorrelatedLocalityFaults:
    """A correlated locality outage: at ``at_fraction`` of the run, a
    ``fraction`` of the alive content peers of one locality fail *at the same
    instant*, together (optionally) with every directory peer serving that
    locality — the failure pattern of a regional network partition or power
    event, which independent per-peer churn can never produce.
    """

    def __init__(
        self,
        at_fraction: float = 0.5,
        locality: int = 0,
        fraction: float = 0.5,
        include_directories: bool = True,
        repeat_every_s: Optional[float] = None,
    ) -> None:
        if not 0.0 < at_fraction < 1.0:
            raise ValueError("at_fraction must be in (0, 1)")
        if locality < 0:
            raise ValueError("locality must be non-negative")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if repeat_every_s is not None and repeat_every_s <= 0:
            raise ValueError("repeat_every_s must be positive or None")
        self.at_fraction = at_fraction
        self.locality = locality
        self.fraction = fraction
        self.include_directories = include_directories
        self.repeat_every_s = repeat_every_s

    def attach(
        self, system: "FlowerCDN", spec: "ScenarioSpec"
    ) -> Optional[Injector]:
        duration = system.config.simulation_duration_s
        injector = ScheduledFaultInjector(
            system=system,
            at_s=self.at_fraction * duration,
            fire=lambda: None,
            repeat_every_s=self.repeat_every_s,
        )
        injector.fire = lambda: self._fire(system, injector.log)
        return injector

    def _fire(self, system: "FlowerCDN", log: List[ChurnLogEntry]) -> None:
        sim = system.sim
        alive = system.alive_content_peer_ids(self.locality)
        if alive:
            count = min(len(alive), max(1, math.ceil(self.fraction * len(alive))))
            victims = sim.streams.sample("fault:correlated-victims", alive, count)
            for victim in victims:
                if system.fail_content_peer(victim):
                    log.append(
                        ChurnLogEntry(
                            time=sim.now, kind="correlated_content_failure", target=victim
                        )
                    )
        if self.include_directories:
            for website, locality in system.active_directory_pairs(self.locality):
                if system.fail_directory(website, locality):
                    log.append(
                        ChurnLogEntry(
                            time=sim.now,
                            kind="correlated_directory_failure",
                            target=f"({website}, {locality})",
                        )
                    )


# -- reachability-backed fault models ------------------------------------------


class ReachabilityInjector:
    """Attaches a :class:`~repro.network.reachability.ReachabilityModel` to
    the live system for the duration of a run, optionally scheduling explicit
    post-heal reconciliation rounds (:meth:`FlowerCDN.reconcile`) at given
    simulation times.
    """

    def __init__(
        self,
        system: "FlowerCDN",
        model: ReachabilityModel,
        reconcile_at: Tuple[float, ...] = (),
        localities: Optional[Tuple[int, ...]] = None,
    ) -> None:
        self._system = system
        self._model = model
        self._reconcile_at = tuple(reconcile_at)
        self._localities = localities
        self._events: list = []
        self.log: List[ChurnLogEntry] = []

    @property
    def model(self) -> ReachabilityModel:
        return self._model

    def start(self) -> None:
        system = self._system
        system.attach_reachability(self._model)
        for time in self._reconcile_at:
            self._events.append(
                system.sim.at(time, self._reconcile, label="fault")
            )

    def _reconcile(self) -> None:
        system = self._system
        system.reconcile(self._localities)
        target = (
            ",".join(str(loc) for loc in self._localities)
            if self._localities is not None
            else "all"
        )
        self.log.append(
            ChurnLogEntry(
                time=system.sim.now, kind="partition_heal_reconcile", target=target
            )
        )

    def stop(self) -> None:
        for event in self._events:
            if not event.cancelled:
                self._system.sim.cancel(event)
        self._events.clear()
        self._system.detach_reachability()


@register_fault_model("locality-partition")
class LocalityPartitionFault:
    """A locality-level network partition: between ``at_fraction`` and
    ``at_fraction + duration_fraction`` of the run, every message crossing
    the boundary of the listed localities is lost (``asymmetric=True`` loses
    only outbound messages).  Peers stay alive throughout — this is the
    unreachable-not-failed regime that exercises redirection timeouts,
    suspicion backoff and origin-server degradation.  With
    ``reconcile_on_heal`` the affected localities run an explicit
    reconciliation round (keepalives, delta pushes, summary refreshes) the
    instant the partition heals instead of waiting for their periodic ticks.
    """

    def __init__(
        self,
        at_fraction: float = 0.4,
        duration_fraction: float = 0.2,
        localities: Tuple[int, ...] = (0,),
        asymmetric: bool = False,
        reconcile_on_heal: bool = True,
    ) -> None:
        if not 0.0 < at_fraction < 1.0:
            raise ValueError("at_fraction must be in (0, 1)")
        if not 0.0 < duration_fraction <= 1.0:
            raise ValueError("duration_fraction must be in (0, 1]")
        localities = tuple(localities)
        if not localities or any(loc < 0 for loc in localities):
            raise ValueError("localities must be a non-empty tuple of indices >= 0")
        self.at_fraction = at_fraction
        self.duration_fraction = duration_fraction
        self.localities = localities
        self.asymmetric = asymmetric
        self.reconcile_on_heal = reconcile_on_heal

    def attach(
        self, system: "FlowerCDN", spec: "ScenarioSpec"
    ) -> Optional[Injector]:
        duration = system.config.simulation_duration_s
        start = self.at_fraction * duration
        end = min(duration, start + self.duration_fraction * duration)
        model = LocalityPartition(
            episodes=((start, end),),
            localities=frozenset(self.localities),
            locality_of=system.topology.locality_of,
            asymmetric=self.asymmetric,
        )
        reconcile_at = (end,) if self.reconcile_on_heal and end < duration else ()
        return ReachabilityInjector(
            system, model, reconcile_at=reconcile_at, localities=self.localities
        )


@register_fault_model("link-loss")
class LinkLossFault:
    """Stationary per-message loss across the whole network: every gated
    protocol message (or only the listed ``kinds``) is independently dropped
    with ``drop_probability``.  Unlike ``gossip-loss`` this stresses *all*
    protocol paths — keepalives, pushes, redirections, D-ring summaries and
    replication — from the dedicated ``"fault:link-loss"`` stream.
    """

    def __init__(
        self, drop_probability: float = 0.05, kinds: Tuple[str, ...] = ()
    ) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        kinds = tuple(kinds)
        unknown = [kind for kind in kinds if kind not in MESSAGE_KINDS]
        if unknown:
            raise ValueError(
                f"unknown message kind(s) {unknown}; known kinds: {MESSAGE_KINDS}"
            )
        self.drop_probability = drop_probability
        self.kinds = kinds

    def attach(
        self, system: "FlowerCDN", spec: "ScenarioSpec"
    ) -> Optional[Injector]:
        if self.drop_probability == 0.0:
            # No loss means no gate and no stream draws: the run stays
            # byte-identical to the "none" fault model.
            return None
        stream = system.sim.streams.stream("fault:link-loss")
        model = LinkLoss(self.drop_probability, stream, self.kinds)
        return ReachabilityInjector(system, model)


@register_fault_model("cascading-directory-failures")
class CascadingDirectoryFailures:
    """A cascade of directory outages: starting at ``start_fraction`` of the
    run, the hosts of the first ``count`` directory peers of one locality
    become unreachable one after the other (``interval_fraction`` apart),
    each for ``outage_duration_fraction`` of the run.  The directories stay
    alive, so the Section 5.2 replacement protocol must *not* fire; queries
    degrade to the origin server until each host resurfaces.
    """

    def __init__(
        self,
        start_fraction: float = 0.3,
        interval_fraction: float = 0.04,
        outage_duration_fraction: float = 0.18,
        count: int = 4,
        locality: int = 0,
        reconcile_on_heal: bool = False,
    ) -> None:
        if not 0.0 < start_fraction < 1.0:
            raise ValueError("start_fraction must be in (0, 1)")
        if interval_fraction < 0:
            raise ValueError("interval_fraction must be non-negative")
        if not 0.0 < outage_duration_fraction <= 1.0:
            raise ValueError("outage_duration_fraction must be in (0, 1]")
        if count <= 0:
            raise ValueError("count must be positive")
        if locality < 0:
            raise ValueError("locality must be non-negative")
        self.start_fraction = start_fraction
        self.interval_fraction = interval_fraction
        self.outage_duration_fraction = outage_duration_fraction
        self.count = count
        self.locality = locality
        self.reconcile_on_heal = reconcile_on_heal

    def attach(
        self, system: "FlowerCDN", spec: "ScenarioSpec"
    ) -> Optional[Injector]:
        duration = system.config.simulation_duration_s
        start = self.start_fraction * duration
        interval = self.interval_fraction * duration
        outage = self.outage_duration_fraction * duration
        windows: List[Tuple[int, float, float]] = []
        # The system is already bootstrapped when models attach, so the
        # sorted pair list pins the victim set deterministically.
        for index, (website, locality) in enumerate(
            system.active_directory_pairs(self.locality)[: self.count]
        ):
            directory = system.directory_for(website, locality)
            if directory is None:
                continue
            begin = start + index * interval
            end = min(duration, begin + outage)
            if begin >= duration or end <= begin:
                continue
            windows.append((directory.host_id, begin, end))
        if not windows:
            return None
        model = HostOutage(tuple(windows))
        heal = max(end for _, _, end in windows)
        reconcile_at = (heal,) if self.reconcile_on_heal and heal < duration else ()
        return ReachabilityInjector(
            system, model, reconcile_at=reconcile_at, localities=(self.locality,)
        )
