"""Parallel scenario execution (multiprocessing over the registry).

Scenario runs are deterministic, share nothing, and are CPU-bound — the ideal
shape for process-level parallelism.  ``repro scenarios run --all --jobs N``
uses :func:`run_scenarios` to execute the whole library (or any subset) over
a worker pool, and the golden suite can be verified the same way with
:func:`check_goldens`.

Workers re-import :mod:`repro`, so results are exactly what a sequential run
produces (every worker builds its own topology/trace from ``(spec, seed)``).
``jobs=1`` bypasses multiprocessing entirely, which keeps single-job runs
debuggable and exception traces short.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, Optional, Sequence

from repro.scenarios import golden as golden_module
from repro.scenarios.library import get_scenario, scenario_names
from repro.scenarios.runner import run_scenario


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given: the machine's CPU count."""
    return max(1, os.cpu_count() or 1)


def map_tasks(fn, tasks: Sequence, jobs: Optional[int] = None) -> List:
    """Map a picklable ``fn`` over ``tasks`` across ``jobs`` processes.

    The shared fan-out primitive of the scenario *and* sweep runners:
    results come back in task order regardless of completion order, and
    ``jobs=1`` (or a single task) bypasses multiprocessing entirely so
    single-job runs stay debuggable with short exception traces.  ``fn``
    must be a module-level callable and ``tasks`` picklable values —
    workers re-import :mod:`repro`, which is what makes parallel output
    byte-identical to sequential output.
    """
    jobs = default_jobs() if jobs is None else jobs
    if jobs <= 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    tasks = list(tasks)
    if jobs == 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(fn, tasks)


# -- worker entry points (module-level for picklability) ----------------------


def _run_one(args: tuple) -> tuple:
    name, seed, scale = args
    spec = get_scenario(name)
    result = run_scenario(spec, seed=seed, scale=scale)
    return name, golden_module.result_digest(result, scale=scale)


def _check_one(name: str) -> tuple:
    try:
        mismatches = golden_module.verify_golden(name)
    except FileNotFoundError as error:
        mismatches = [str(error)]
    return name, mismatches


# -- public API ---------------------------------------------------------------


def resolve_names(names: Optional[Sequence[str]]) -> List[str]:
    """Validate scenario names, defaulting to the standard tier.

    The paper-scale tier (minutes per scenario) never runs implicitly — name
    those scenarios explicitly or use the nightly workflow.
    """
    if not names:
        return scenario_names(tier="standard")
    known = set(scenario_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise KeyError(
            f"unknown scenario(s): {', '.join(unknown)}; "
            f"known scenarios: {', '.join(scenario_names())}"
        )
    return list(names)


def run_scenarios(
    names: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    scale: float = 1.0,
) -> Dict[str, Dict[str, object]]:
    """Run scenarios across ``jobs`` worker processes; name -> metrics digest.

    Results are returned in library order regardless of completion order, and
    are identical to sequential :func:`repro.scenarios.runner.run_scenario`
    runs of the same ``(spec, seed, scale)``.
    """
    names = resolve_names(names)
    pairs = map_tasks(_run_one, [(name, seed, scale) for name in names], jobs=jobs)
    ordered = dict(pairs)
    return {name: ordered[name] for name in names}


def check_goldens(
    names: Optional[Sequence[str]] = None, jobs: Optional[int] = None
) -> Dict[str, List[str]]:
    """Verify committed goldens in parallel; name -> list of mismatches."""
    names = resolve_names(names)
    pairs = map_tasks(_check_one, names, jobs=jobs)
    ordered = dict(pairs)
    return {name: ordered[name] for name in names}
