"""Parallel scenario execution (multiprocessing over the registry).

Scenario runs are deterministic, share nothing, and are CPU-bound — the ideal
shape for process-level parallelism.  ``repro scenarios run --all --jobs N``
uses :func:`run_scenarios` to execute the whole library (or any subset) over
a worker pool, and the golden suite can be verified the same way with
:func:`check_goldens`.

Workers re-import :mod:`repro`, so results are exactly what a sequential run
produces (every worker builds its own topology/trace from ``(spec, seed)``).
``jobs=1`` bypasses multiprocessing entirely, which keeps single-job runs
debuggable and exception traces short.
"""

from __future__ import annotations

import multiprocessing
import os
import reprlib
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.scenarios import golden as golden_module
from repro.scenarios.library import get_scenario, scenario_names
from repro.scenarios.runner import run_scenario


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given.

    Uses the process's CPU *affinity* where the platform exposes it —
    in containers and CI runners the cgroup/affinity mask is routinely
    smaller than the host's raw CPU count, and sizing the pool from
    ``os.cpu_count()`` oversubscribes it.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


class TaskError(RuntimeError):
    """A ``map_tasks`` worker raised; identifies which task failed."""

    def __init__(self, index: int, task_repr: str, cause_text: str):
        super().__init__(
            f"task #{index} ({task_repr}) failed in worker: {cause_text}"
        )
        self.index = index
        self.task_repr = task_repr
        self.cause_text = cause_text


class _TaskCall:
    """Module-level picklable wrapper running ``fn`` with failure capture.

    Pool workers lose the association between an exception and the task
    that raised it; wrapping every call lets the parent re-raise with the
    failing task identified (and the worker traceback preserved as text).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def __call__(self, indexed: Tuple[int, Any]) -> Tuple[bool, Any]:
        index, task = indexed
        try:
            return True, self.fn(task)
        except Exception:
            return False, (index, reprlib.repr(task), traceback.format_exc())


def map_tasks(
    fn: Callable[[Any], Any],
    tasks: Sequence,
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List:
    """Map a picklable ``fn`` over ``tasks`` across ``jobs`` processes.

    The shared fan-out primitive of the scenario *and* sweep runners:
    results come back in task order regardless of completion order, and
    ``jobs=1`` (or a single task) bypasses multiprocessing entirely so
    single-job runs stay debuggable with short exception traces.  ``fn``
    must be a module-level callable and ``tasks`` picklable values —
    workers re-import :mod:`repro`, which is what makes parallel output
    byte-identical to sequential output.

    A worker exception surfaces as :class:`TaskError` naming the failing
    task's index and repr, with the worker traceback embedded.  ``chunksize``
    batches task dispatch (``pool.map`` semantics); large grids amortise
    IPC overhead with ``chunksize > 1`` without affecting result order.
    """
    jobs = default_jobs() if jobs is None else jobs
    if jobs <= 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    if chunksize is not None and chunksize <= 0:
        raise ValueError(f"chunksize must be positive, got {chunksize}")
    tasks = list(tasks)
    call = _TaskCall(fn)
    if jobs == 1 or len(tasks) <= 1:
        outcomes = [call(indexed) for indexed in enumerate(tasks)]
    else:
        with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
            outcomes = pool.map(call, list(enumerate(tasks)), chunksize=chunksize)
    results = []
    for ok, payload in outcomes:
        if not ok:
            index, task_repr, cause_text = payload
            raise TaskError(index, task_repr, cause_text)
        results.append(payload)
    return results


# -- worker entry points (module-level for picklability) ----------------------


def _run_one(args: tuple) -> tuple:
    name, seed, scale = args
    spec = get_scenario(name)
    result = run_scenario(spec, seed=seed, scale=scale)
    return name, golden_module.result_digest(result, scale=scale)


def _check_one(name: str) -> tuple:
    try:
        mismatches = golden_module.verify_golden(name)
    except FileNotFoundError as error:
        mismatches = [str(error)]
    return name, mismatches


# -- public API ---------------------------------------------------------------


def resolve_names(names: Optional[Sequence[str]]) -> List[str]:
    """Validate scenario names, defaulting to the standard tier.

    The paper-scale tier (minutes per scenario) never runs implicitly — name
    those scenarios explicitly or use the nightly workflow.
    """
    if not names:
        return scenario_names(tier="standard")
    known = set(scenario_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise KeyError(
            f"unknown scenario(s): {', '.join(unknown)}; "
            f"known scenarios: {', '.join(scenario_names())}"
        )
    return list(names)


def run_scenarios(
    names: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    scale: float = 1.0,
) -> Dict[str, Dict[str, object]]:
    """Run scenarios across ``jobs`` worker processes; name -> metrics digest.

    Results are returned in library order regardless of completion order, and
    are identical to sequential :func:`repro.scenarios.runner.run_scenario`
    runs of the same ``(spec, seed, scale)``.
    """
    names = resolve_names(names)
    pairs = map_tasks(_run_one, [(name, seed, scale) for name in names], jobs=jobs)
    ordered = dict(pairs)
    return {name: ordered[name] for name in names}


def check_goldens(
    names: Optional[Sequence[str]] = None, jobs: Optional[int] = None
) -> Dict[str, List[str]]:
    """Verify committed goldens in parallel; name -> list of mismatches."""
    names = resolve_names(names)
    pairs = map_tasks(_check_one, names, jobs=jobs)
    ordered = dict(pairs)
    return {name: ordered[name] for name in names}
