"""Scenario execution: spec in, structured deterministic result out.

:class:`ScenarioRunner` composes the simulator, topology, workload and the
requested CDN systems from a :class:`~repro.scenarios.spec.ScenarioSpec`
(via the shared :class:`~repro.experiments.driver.ExperimentRunner`, so every
system in a scenario processes the exact same resolved query trace) and
returns a :class:`ScenarioResult`:

* per-system headline **metrics** (hit ratio, lookup latency, transfer
  distance, background bandwidth, outcome mix);
* per-system **phase** aggregates (warm-up vs steady state, split at
  ``spec.warmup_fraction``);
* per-system **series** (the windowed curves behind Figures 5-8).

Results are deterministic functions of ``(spec, seed)`` — byte-for-byte
reproducible across processes — which is what the golden-metrics regression
suite in :mod:`repro.scenarios.golden` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.experiments.driver import ExperimentRunner, RunResult
from repro.metrics.timeseries import TimeSeries
from repro.scenarios.spec import ScenarioSpec

if TYPE_CHECKING:
    from repro.session import Session

#: digest metrics that are integer counts (never rounded in digests)
INTEGER_METRICS = (
    "num_queries",
    "redirection_failures",
    "resilience_messages_blocked",
    "resilience_retries_exhausted",
    "resilience_server_fallbacks",
    "resilience_reconciliations",
)


def _phase_mean(series: TimeSeries, split_s: float, phase: str) -> float:
    """Mean of the per-window means falling into one phase of the run."""
    if phase == "warmup":
        values = [mean for start, mean in series.window_means() if start < split_s]
    else:
        values = list(series.values_after(split_s))
    return sum(values) / len(values) if values else 0.0


@dataclass
class SystemResult:
    """Everything recorded about one system's run inside a scenario."""

    system: str
    metrics: Dict[str, float]
    phases: Dict[str, Dict[str, float]]
    series: Dict[str, List[Tuple[float, float]]]
    run: Optional[RunResult] = field(default=None, repr=False, compare=False)

    def to_dict(self, precision: Optional[int] = None) -> Dict[str, object]:
        def number(value: float) -> float:
            return value if precision is None else round(value, precision)

        return {
            "metrics": {
                key: (value if key in INTEGER_METRICS else number(value))
                for key, value in self.metrics.items()
            },
            "phases": {
                phase: {key: number(value) for key, value in values.items()}
                for phase, values in self.phases.items()
            },
            "series": {
                name: [[number(t), number(v)] for t, v in points]
                for name, points in self.series.items()
            },
        }


@dataclass
class ScenarioResult:
    """The structured outcome of one scenario run."""

    spec: ScenarioSpec
    seed: int
    systems: Dict[str, SystemResult]

    def __getitem__(self, system: str) -> SystemResult:
        return self.systems[system]

    @property
    def flower(self) -> SystemResult:
        return self.systems["flower"]

    @property
    def squirrel(self) -> SystemResult:
        return self.systems["squirrel"]

    def to_dict(self) -> Dict[str, object]:
        """Full-precision structured result (used for determinism checks)."""
        return {
            "scenario": self.spec.name,
            "seed": self.seed,
            "spec": self.spec.to_dict(),
            "systems": {name: result.to_dict() for name, result in self.systems.items()},
        }

    def metrics_digest(self, precision: int = 6) -> Dict[str, object]:
        """Rounded metrics + phases (no series) — the golden-file payload.

        Rounding makes the digest robust to representation noise when it is
        serialised, diffed and compared across platforms.
        """
        digest: Dict[str, object] = {
            "scenario": self.spec.name,
            "seed": self.seed,
            "systems": {},
        }
        for name, result in self.systems.items():
            entry = result.to_dict(precision=precision)
            del entry["series"]
            digest["systems"][name] = entry
        return digest


def summarise_system(spec: ScenarioSpec, system: str, run: RunResult) -> SystemResult:
    """Fold one raw :class:`RunResult` into the structured scenario shape."""
    metrics = run.metrics
    split_s = spec.warmup_s
    outcome_fractions = metrics.outcome_fractions()

    headline: Dict[str, float] = {
        "num_queries": run.num_queries,
        "hit_ratio": run.hit_ratio,
        "average_lookup_latency_ms": run.average_lookup_latency_ms,
        "average_transfer_distance_ms": run.average_transfer_distance_ms,
        "background_bps_per_peer": run.background_bps_per_peer,
        "redirection_failures": run.redirection_failures,
        "average_overlay_hops": metrics.average_overlay_hops,
    }
    for outcome, fraction in sorted(
        outcome_fractions.items(), key=lambda item: item[0].value
    ):
        headline[f"fraction_{outcome.value}"] = fraction
    if run.resilience:
        # Present only when a metric-emitting reachability model ran, so
        # fault-free digests stay byte-identical to the pre-resilience ones.
        headline.update(run.resilience)

    phases = {
        phase: {
            "hit_ratio": _phase_mean(metrics.hit_ratio_series, split_s, phase),
            "lookup_latency_ms": _phase_mean(
                metrics.lookup_latency_series, split_s, phase
            ),
            "transfer_distance_ms": _phase_mean(
                metrics.transfer_distance_series, split_s, phase
            ),
        }
        for phase in ("warmup", "steady")
    }

    series: Dict[str, List[Tuple[float, float]]] = {
        "hit_ratio_cumulative": metrics.hit_ratio_series.cumulative_means(),
        "lookup_latency_ms": metrics.lookup_latency_series.window_means(),
        "transfer_distance_ms": metrics.transfer_distance_series.window_means(),
    }
    if run.bandwidth is not None:
        series["background_bps_per_peer"] = run.bandwidth.bps_series()

    return SystemResult(
        system=system, metrics=headline, phases=phases, series=series, run=run
    )


class ScenarioRunner:
    """Back-compatible shim over :class:`repro.session.Session`.

    Pre-Session code constructed a ``ScenarioRunner`` directly; the class
    remains (same constructor, same ``run()``/``experiment`` surface) but
    delegates everything to a Session so there is exactly one execution
    path.  New code should use :meth:`repro.session.Session.from_spec`.
    """

    def __init__(self, spec: ScenarioSpec, seed: Optional[int] = None) -> None:
        from repro.session import Session

        self._session = Session(spec, seed=seed)
        self.spec = spec
        self.seed = self._session.seed

    @property
    def session(self) -> "Session":
        """The Session this shim wraps."""
        return self._session

    @property
    def experiment(self) -> ExperimentRunner:
        """The underlying driver (exposed for tests and ad-hoc inspection)."""
        return self._session.experiment

    def run(self) -> ScenarioResult:
        return self._session.run()


def run_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    kernel: bool = False,
    shards: Optional[int] = None,
    shard_jobs: Optional[int] = None,
) -> ScenarioResult:
    """Convenience wrapper: optionally rescale, then run through a Session."""
    from repro.session import Session

    if scale is not None and scale != 1.0:
        spec = spec.scaled(scale)
    return Session(
        spec, seed=seed, kernel=kernel, shards=shards, shard_jobs=shard_jobs
    ).run()
