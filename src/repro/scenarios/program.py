"""Declarative scenario programs: ordered workload phases.

A *program* is an ordered tuple of :class:`WorkloadPhase` values attached to
a :class:`~repro.scenarios.spec.ScenarioSpec`.  Each phase describes one
slice of the run — how long it lasts, how the aggregate arrival rate is
scaled, whether the Zipf skew is overridden and how far the active-website
window ("hotspot") is rotated through the catalogue.  Programs *compile
down* to :class:`~repro.workload.phases.PhaseSpan` segments the workload
generator executes directly; the declarative and the execution layers are
kept separate so each stays independently testable (the DB-nets layering:
a small control vocabulary over an unchanged deterministic substrate).

An empty program means "one stationary workload over the whole run" — the
historical behaviour, byte-identical to pre-program specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.workload.phases import PhaseSpan


@dataclass(frozen=True)
class WorkloadPhase:
    """One declarative phase of a scenario program.

    ``duration_s=None`` means "the remainder of the run" and is only valid
    for the final phase; explicit durations are rescaled proportionally when
    the owning spec is :meth:`~repro.scenarios.spec.ScenarioSpec.scaled`.
    """

    duration_s: Optional[float] = None
    rate_multiplier: float = 1.0
    zipf_alpha: Optional[float] = None
    hotspot_rotation: int = 0

    def __post_init__(self) -> None:
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("phase duration_s must be positive or None")
        if self.rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be positive")
        if self.zipf_alpha is not None and self.zipf_alpha < 0:
            raise ValueError("zipf_alpha must be non-negative or None")
        if self.hotspot_rotation < 0:
            raise ValueError("hotspot_rotation must be non-negative")

    def scaled(self, factor: float) -> "WorkloadPhase":
        """The phase with its explicit duration rescaled by ``factor``."""
        if self.duration_s is None:
            return self
        return WorkloadPhase(
            duration_s=self.duration_s * factor,
            rate_multiplier=self.rate_multiplier,
            zipf_alpha=self.zipf_alpha,
            hotspot_rotation=self.hotspot_rotation,
        )

    def to_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "rate_multiplier": self.rate_multiplier,
            "zipf_alpha": self.zipf_alpha,
            "hotspot_rotation": self.hotspot_rotation,
        }


def compile_program(
    program: Sequence[WorkloadPhase], duration_s: float
) -> Tuple[PhaseSpan, ...]:
    """Compile declarative phases into contiguous absolute spans.

    Phase durations must tile ``[0, duration_s)`` exactly; a single trailing
    ``duration_s=None`` phase absorbs whatever the explicit phases leave
    (which also sidesteps floating-point residue when specs are rescaled).
    Raises ``ValueError`` for empty remainders, over-long programs or a
    ``None`` duration anywhere but last.
    """
    program = tuple(program)
    if not program:
        return ()
    spans: List[PhaseSpan] = []
    clock = 0.0
    for index, phase in enumerate(program):
        is_last = index == len(program) - 1
        if phase.duration_s is None:
            if not is_last:
                raise ValueError(
                    "only the final phase may leave duration_s unset "
                    f"(phase {index} of {len(program)} does)"
                )
            end = duration_s
        else:
            end = clock + phase.duration_s
            if is_last:
                if abs(end - duration_s) > 1e-9 * max(1.0, duration_s):
                    raise ValueError(
                        f"phase durations must sum to the run duration: got "
                        f"{end}, expected {duration_s} (leave the final "
                        f"phase's duration_s unset to absorb the remainder)"
                    )
                end = duration_s
        if end <= clock:
            raise ValueError(
                f"phase {index} is empty: the run ends at {duration_s} but "
                f"the preceding phases already cover {clock}"
            )
        if end > duration_s + 1e-9 * max(1.0, duration_s):
            raise ValueError(
                f"phase {index} extends past the run: phases cover {end} "
                f"of a {duration_s}-second run"
            )
        spans.append(
            PhaseSpan(
                start_s=clock,
                end_s=end,
                rate_multiplier=phase.rate_multiplier,
                zipf_alpha=phase.zipf_alpha,
                hotspot_rotation=phase.hotspot_rotation,
            )
        )
        clock = end
    return tuple(spans)


def scale_program(
    program: Sequence[WorkloadPhase], factor: float
) -> Tuple[WorkloadPhase, ...]:
    """Rescale every explicit phase duration by ``factor`` (ratio-preserving)."""
    return tuple(phase.scaled(factor) for phase in program)
