"""Digest comparison across branches / parameter sets (``scenarios diff``).

``repro scenarios run NAME > A.json`` emits a metrics digest; this module
compares two such digests — typically produced on different branches, seeds
or parameter sets — metric by metric, with the same per-metric tolerance
bands the golden suite uses.  Output is a structured row per metric (values,
absolute and relative delta, whether the delta is inside the tolerance), so
"did my refactor move any metric, and by how much" is one command:

    repro scenarios diff baseline.json candidate.json
    repro scenarios diff baseline.json candidate.json --exact

Unlike the golden gate this is a *reporting* tool: it diffs whatever two
digests it is given, even across different scenarios or scales (the header
fields are reported as context rows rather than rejected).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.scenarios.golden import EXACT, FRACTION_TOLERANCE, Tolerance, _tolerance_for


@dataclass(frozen=True, slots=True)
class MetricDelta:
    """One metric's comparison between two digests."""

    metric: str  # dotted path, e.g. "flower.metrics.hit_ratio"
    left: Optional[float]
    right: Optional[float]
    tolerance: Tolerance

    @property
    def delta(self) -> Optional[float]:
        if self.left is None or self.right is None:
            return None
        return self.right - self.left

    @property
    def relative_delta(self) -> Optional[float]:
        if self.left is None or self.right is None or self.left == 0:
            return None
        return (self.right - self.left) / abs(self.left)

    @property
    def within_tolerance(self) -> bool:
        if self.left is None or self.right is None:
            return False
        return self.tolerance.allows(self.left, self.right)


@dataclass(frozen=True, slots=True)
class DigestDiff:
    """Structured outcome of diffing two digests."""

    context: Dict[str, tuple]  # header field -> (left, right)
    deltas: List[MetricDelta]

    @property
    def out_of_tolerance(self) -> List[MetricDelta]:
        return [delta for delta in self.deltas if not delta.within_tolerance]

    @property
    def changed(self) -> List[MetricDelta]:
        return [delta for delta in self.deltas if delta.delta not in (0.0, None)]


def _metric_blocks(
    digest: Dict[str, object]
) -> "Iterator[Tuple[str, bool, Dict[str, object]]]":
    """Yield (prefix, is_phase, metric_dict) blocks of one digest."""
    for system in sorted(digest.get("systems", {})):
        entry = digest["systems"][system]
        yield f"{system}.metrics", False, entry.get("metrics", {})
        for phase in sorted(entry.get("phases", {})):
            yield f"{system}.phases.{phase}", True, entry["phases"][phase]


def diff_digests(
    left: Dict[str, object],
    right: Dict[str, object],
    exact: bool = False,
) -> DigestDiff:
    """Compare two metrics digests metric by metric.

    ``exact`` replaces the golden tolerance bands with exact comparison —
    useful when the two digests are supposed to be byte-identical (e.g. a
    pure refactor on the same seed/scale).
    """
    context = {
        field: (left.get(field), right.get(field))
        for field in ("scenario", "seed", "scale")
    }
    left_blocks = dict(
        (prefix, (phase, metrics)) for prefix, phase, metrics in _metric_blocks(left)
    )
    right_blocks = dict(
        (prefix, (phase, metrics)) for prefix, phase, metrics in _metric_blocks(right)
    )
    deltas: List[MetricDelta] = []
    for prefix in sorted(set(left_blocks) | set(right_blocks)):
        phase, left_metrics = left_blocks.get(prefix, (False, {}))
        phase_r, right_metrics = right_blocks.get(prefix, (phase, {}))
        phase = phase or phase_r
        for metric in sorted(set(left_metrics) | set(right_metrics)):
            if exact:
                tolerance = EXACT
            elif metric.startswith("fraction_"):
                tolerance = FRACTION_TOLERANCE
            else:
                tolerance = _tolerance_for(metric, phase=phase)
            left_value = left_metrics.get(metric)
            right_value = right_metrics.get(metric)
            if metric.startswith("fraction_"):
                # Fractions default to 0.0 when the outcome was never observed.
                left_value = 0.0 if left_value is None else left_value
                right_value = 0.0 if right_value is None else right_value
            deltas.append(
                MetricDelta(
                    metric=f"{prefix}.{metric}",
                    left=None if left_value is None else float(left_value),
                    right=None if right_value is None else float(right_value),
                    tolerance=tolerance,
                )
            )
    return DigestDiff(context=context, deltas=deltas)


def load_digest(path: Path) -> Dict[str, object]:
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "systems" not in document:
        raise ValueError(
            f"{path} is not a scenario metrics digest (expected a JSON object "
            "with a 'systems' key, as emitted by `repro scenarios run NAME`)"
        )
    return document


def format_diff(diff: DigestDiff, all_rows: bool = False) -> str:
    """Human-readable report; out-of-tolerance rows are flagged with ``!``."""
    lines: List[str] = []
    for field, (left, right) in diff.context.items():
        marker = "" if left == right else "  (differs)"
        lines.append(f"# {field}: {left!r} -> {right!r}{marker}")
    rows = diff.deltas if all_rows else [
        delta for delta in diff.deltas if delta.delta != 0.0
    ]
    if not rows:
        lines.append("no metric differences")
        return "\n".join(lines)
    width = max(len(delta.metric) for delta in rows)
    for delta in rows:
        flag = " " if delta.within_tolerance else "!"
        left = "missing" if delta.left is None else f"{delta.left:.6g}"
        right = "missing" if delta.right is None else f"{delta.right:.6g}"
        if delta.delta is None:
            change = ""
        else:
            change = f"  delta {delta.delta:+.6g}"
            if delta.relative_delta is not None:
                change += f" ({delta.relative_delta:+.2%})"
        tolerance = delta.tolerance
        band = (
            " [exact]"
            if tolerance.relative == 0.0 and tolerance.absolute == 0.0
            else f" [tol rel={tolerance.relative:g} abs={tolerance.absolute:g}]"
        )
        lines.append(f"{flag} {delta.metric:<{width}}  {left} -> {right}{change}{band}")
    return "\n".join(lines)
