"""The named scenario library.

Each entry is a :class:`~repro.scenarios.spec.ScenarioSpec` describing one
workload the system must keep handling well.  All library scenarios are
defined at *laptop scale* — the Table 1 parameter ratios shrunk so a run
finishes in a couple of seconds — because that is the scale the golden
regression suite and CI exercise; ``spec.scaled(factor)`` reaches other
scales (``paper_default_full_scale()`` returns the genuine Table 1 setup).

Use :func:`get_scenario` / :func:`scenario_names` to consume the library and
:func:`register_scenario` to extend it (e.g. from a plugin or a test).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.core.config import HOUR, MINUTE
from repro.experiments.driver import ExperimentSetup
from repro.scenarios.models import ModelRef
from repro.scenarios.program import WorkloadPhase
from repro.scenarios.spec import KNOWN_TIERS, ChurnProfile, ScenarioSpec

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the library under ``spec.name``."""
    if spec.name in _REGISTRY and not overwrite:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_scenario(name: str) -> None:
    """Remove a scenario (used by tests that register temporary scenarios)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") from None


def scenario_names(tier: Optional[str] = None) -> List[str]:
    """Registered scenario names, optionally restricted to one tier.

    ``tier=None`` returns the whole library.  Batch consumers that *run*
    scenarios (the per-PR golden gate, ``scenarios run --all``) restrict
    themselves to the "standard" tier, so the minutes-long "paper-scale"
    tier only runs when asked for explicitly (nightly CI, ``--tier``).
    """
    if tier is None:
        return sorted(_REGISTRY)
    if tier not in KNOWN_TIERS:
        raise ValueError(f"unknown tier {tier!r}; expected one of {KNOWN_TIERS}")
    return sorted(name for name, spec in _REGISTRY.items() if spec.tier == tier)


def iter_scenarios(tier: Optional[str] = None) -> Iterator[ScenarioSpec]:
    for name in scenario_names(tier):
        yield _REGISTRY[name]


# -- the built-in library ----------------------------------------------------

#: canonical laptop-scale baseline: Table 1 ratios, gossip at the paper's
#: chosen operating point (Tgossip = 30 min, Lgossip = 10, Vgossip = 50)
PAPER_DEFAULT = register_scenario(
    ScenarioSpec(
        name="paper-default",
        description=(
            "Table 1 configuration at laptop scale: the canonical Flower-CDN "
            "run every figure and golden is anchored to."
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="flash-crowd",
        description=(
            "One website absorbs a sudden, highly skewed burst: a single "
            "active website, 3x the query rate and a steep Zipf law stress "
            "overlay admission and the push/summary path."
        ),
        duration_s=90 * MINUTE,
        query_rate_per_s=6.0,
        active_websites=1,
        zipf_alpha=1.1,
        max_content_overlay_size=25,
    )
)

register_scenario(
    ScenarioSpec(
        name="heavy-churn",
        description=(
            "Section 5 mechanisms under sustained stress: frequent content-"
            "peer failures, directory failures and locality changes."
        ),
        churn=ChurnProfile(
            content_failures_per_hour=60.0,
            directory_failures_per_hour=6.0,
            locality_changes_per_hour=12.0,
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="cold-start",
        description=(
            "The early regime before gossip has converged: a short run whose "
            "gossip period equals half the duration, so almost every query "
            "meets an empty view."
        ),
        duration_s=1 * HOUR,
        gossip_period_s=30 * MINUTE,
        warmup_fraction=0.25,
    )
)

register_scenario(
    ScenarioSpec(
        name="squirrel-head-to-head",
        description=(
            "Figures 6-8 in one scenario: Flower-CDN and Squirrel process the "
            "exact same trace; hit ratio, lookup latency and transfer "
            "distance are directly comparable."
        ),
        systems=("flower", "squirrel"),
    )
)

register_scenario(
    ScenarioSpec(
        name="large-catalog",
        description=(
            "A wider, flatter workload: 3x the websites with 6 active ones "
            "and a gentler Zipf law dilute per-overlay locality."
        ),
        num_websites=60,
        active_websites=6,
        objects_per_website=150,
        zipf_alpha=0.7,
        duration_s=2 * HOUR,
    )
)

register_scenario(
    ScenarioSpec(
        name="multi-locality",
        description=(
            "Six non-uniformly populated localities (the paper's k) with a "
            "strongly skewed client distribution: exercises remote-overlay "
            "redirection between sparse and dense localities."
        ),
        num_localities=6,
        num_hosts=900,
        locality_weights=(8.0, 4.0, 2.0, 1.0, 0.5, 0.5),
        duration_s=2 * HOUR,
    )
)

register_scenario(
    ScenarioSpec(
        name="pastry-substrate",
        description=(
            "The paper-default workload with the D-ring running on the "
            "Pastry substrate instead of Chord — exercising Section 3.1's "
            "claim that D-ring integrates with any standard DHT.  Routing "
            "paths differ from Chord, so this scenario pins the Pastry "
            "overlay with its own golden."
        ),
        dht_substrate="pastry",
    )
)

register_scenario(
    ScenarioSpec(
        name="gossip-starved",
        description=(
            "Knowledge dissemination nearly disabled: a 2-hour gossip period, "
            "short messages and tiny views leave queries to the directory "
            "machinery alone — the lower bound of Table 2."
        ),
        gossip_period_s=2 * HOUR,
        gossip_length=5,
        view_size=10,
        duration_s=2 * HOUR,
    )
)

register_scenario(
    ScenarioSpec(
        name="gossip-lossy",
        description=(
            "Paper-default workload over an unreliable transport: every "
            "attempted gossip exchange is dropped in transit with "
            "probability 0.25 — the lossy-network regime the paper's "
            "reliable-delivery assumption glosses over.  Dissemination "
            "survives on the remaining exchanges, degrading view freshness "
            "without touching the directory machinery (contrast with "
            "gossip-starved, which throttles the schedule itself)."
        ),
        fault_model=ModelRef.of("gossip-loss", drop_probability=0.25),
    )
)


# -- scenario-program workloads (phased, churned, faulted) -------------------

register_scenario(
    ScenarioSpec(
        name="adversarial-hotspots",
        description=(
            "Rotating flash crowds: every 30 minutes the doubled-rate, "
            "steep-Zipf hotspot window jumps to a disjoint slice of the "
            "catalogue, so freshly warmed overlays turn cold — the "
            "adversarial counterpart of flash-crowd."
        ),
        duration_s=2 * HOUR,
        query_rate_per_s=3.0,
        program=(
            WorkloadPhase(duration_s=30 * MINUTE, rate_multiplier=2.0,
                          zipf_alpha=1.1, hotspot_rotation=0),
            WorkloadPhase(duration_s=30 * MINUTE, rate_multiplier=2.0,
                          zipf_alpha=1.1, hotspot_rotation=2),
            WorkloadPhase(duration_s=30 * MINUTE, rate_multiplier=2.0,
                          zipf_alpha=1.1, hotspot_rotation=4),
            WorkloadPhase(rate_multiplier=2.0, zipf_alpha=1.1,
                          hotspot_rotation=6),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="diurnal-cycle",
        description=(
            "A compressed day: a quiet night, a morning ramp, a skewed "
            "mid-day peak at 2.5x the base rate and an evening decline — "
            "the paper's stationary load made time-varying."
        ),
        duration_s=4 * HOUR,
        program=(
            WorkloadPhase(duration_s=1 * HOUR, rate_multiplier=0.4),
            WorkloadPhase(duration_s=1 * HOUR, rate_multiplier=1.2),
            WorkloadPhase(duration_s=1 * HOUR, rate_multiplier=2.5, zipf_alpha=1.0),
            WorkloadPhase(rate_multiplier=0.8),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="correlated-failures",
        description=(
            "A regional outage on top of light background churn: halfway "
            "through the run, 60% of locality 0's content peers and all of "
            "its directory peers fail at the same instant, exercising the "
            "Section 5 repair machinery under correlated (not independent) "
            "failures."
        ),
        churn=ChurnProfile(content_failures_per_hour=12.0),
        fault_model=ModelRef.of(
            "correlated-locality",
            at_fraction=0.5,
            locality=0,
            fraction=0.6,
            include_directories=True,
        ),
    )
)

# -- resilience scenarios (reachability faults) ------------------------------

register_scenario(
    ScenarioSpec(
        name="locality-partition",
        description=(
            "Locality 0 is cut off from the rest of the network for the "
            "middle fifth of the run, and a hotspot rotation lands inside "
            "the fault window: established overlays ride out the partition "
            "(locality awareness keeps them self-contained), but clients "
            "joining the newly hot websites cannot reach cross-boundary "
            "D-ring bootstrap nodes, so their queries time out and degrade "
            "to the origin server until a retry lands on a reachable node; "
            "recovery after the heal is left to the periodic gossip/"
            "keepalive machinery alone (contrast with "
            "partition-heal-reconcile)."
        ),
        duration_s=3 * HOUR,
        content_miss_fallback="directory",
        program=(
            WorkloadPhase(duration_s=81 * MINUTE),
            WorkloadPhase(hotspot_rotation=2),
        ),
        fault_model=ModelRef.of(
            "locality-partition",
            at_fraction=0.4,
            duration_fraction=0.2,
            localities=(0,),
            reconcile_on_heal=False,
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="partition-heal-reconcile",
        description=(
            "The same mid-run partition of locality 0 with a hotspot "
            "rotation inside the fault window, but the instant the network "
            "heals the affected locality runs an explicit reconciliation "
            "round — immediate keepalives, deferred delta pushes and "
            "directory summary refreshes — so the hit ratio snaps back to "
            "its pre-partition steady state instead of drifting back over "
            "the following periods."
        ),
        duration_s=3 * HOUR,
        content_miss_fallback="directory",
        program=(
            WorkloadPhase(duration_s=81 * MINUTE),
            WorkloadPhase(hotspot_rotation=2),
        ),
        fault_model=ModelRef.of(
            "locality-partition",
            at_fraction=0.4,
            duration_fraction=0.2,
            localities=(0,),
            reconcile_on_heal=True,
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="cascading-directory-failures",
        description=(
            "A rolling outage across locality 0's directory hosts: starting "
            "at 45% of the run the first four directory hosts become "
            "unreachable one after the other, each for 18% of the run.  The "
            "directories never die, so the Section 5.2 replacement protocol "
            "must not fire; their overlays ride out the outage on origin-"
            "server fallback until each host resurfaces."
        ),
        content_miss_fallback="directory",
        fault_model=ModelRef.of(
            "cascading-directory-failures",
            start_fraction=0.45,
            interval_fraction=0.04,
            outage_duration_fraction=0.18,
            count=4,
            locality=0,
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="cache-bounded-peers",
        description=(
            "Finite peer disks: every content peer caches at most 25 "
            "objects (LRU) against a 200-object-per-site catalogue, so "
            "summaries go stale through eviction rather than churn."
        ),
        duration_s=2 * HOUR,
        query_rate_per_s=4.0,
        content_cache_capacity=25,
    )
)


#: the genuine Table 1 configuration (5000 hosts, 24 simulated hours) as a
#: first-class scenario of the nightly "paper-scale" tier.  It pins the
#: memory-lean run modes — calendar event queue and compact metric
#: reservoirs — whose results are byte-identical to the defaults; its golden
#: is committed at scale 1.0 and checked by the nightly job (see
#: docs/performance.md for the wall/RSS budget).
PAPER_DEFAULT_FULL_SCALE = register_scenario(
    ScenarioSpec(
        name="paper-default-full-scale",
        description=(
            "The genuine Table 1 configuration: 5000 hosts, 6 localities, "
            "100 websites, 24 simulated hours at 6 queries/s — the "
            "paper-scale perf tier."
        ),
        num_hosts=5000,
        num_localities=6,
        num_websites=100,
        active_websites=6,
        objects_per_website=500,
        max_content_overlay_size=100,
        query_rate_per_s=6.0,
        duration_s=24 * HOUR,
        metrics_window_s=HOUR,
        tier="paper-scale",
        queue_backend="calendar",
        compact_metrics=True,
    )
)


#: Table 1 at 10x population: 50000 hosts, 1000 websites (60 active) and a
#: ~5.2M-query, 24-hour trace.  The flagship target of the space-parallel
#: shard engine (``--shards N`` splits the websites over N shard engines with
#: conservative window barriers; see docs/performance.md) — the committed
#: golden is produced by the historical single-process path, which every
#: sharded run reproduces digest-identically.  Nightly paper-scale tier;
#: duration stays the genuine 24 h (only the population is scaled).
PAPER_DEFAULT_SCALE10 = register_scenario(
    ScenarioSpec(
        name="paper-default-scale10",
        description=(
            "Table 1 at 10x population: 50000 hosts, 6 localities, 1000 "
            "websites (60 active), 24 simulated hours at 60 queries/s — the "
            "scale-10 nightly target of the sharded engine."
        ),
        num_hosts=50000,
        num_localities=6,
        num_websites=1000,
        active_websites=60,
        objects_per_website=500,
        max_content_overlay_size=100,
        query_rate_per_s=60.0,
        duration_s=24 * HOUR,
        metrics_window_s=HOUR,
        tier="paper-scale",
        queue_backend="calendar",
        compact_metrics=True,
    )
)


#: the Figures 6-8 head-to-head at the genuine Table 1 scale: Flower-CDN and
#: Squirrel replay the same 24-hour, ~517k-query trace.  Shipped in the
#: nightly paper-scale tier now that Squirrel's replay dispatch is ~2.3x
#: faster (PR 4); the golden is committed at scale 1.0.
SQUIRREL_HEAD_TO_HEAD_FULL_SCALE = register_scenario(
    ScenarioSpec(
        name="squirrel-head-to-head-full-scale",
        description=(
            "Figures 6-8 at the genuine Table 1 scale: Flower-CDN and "
            "Squirrel process the same 5000-host, 24-hour trace — the "
            "paper-scale counterpart of squirrel-head-to-head."
        ),
        num_hosts=5000,
        num_localities=6,
        num_websites=100,
        active_websites=6,
        objects_per_website=500,
        max_content_overlay_size=100,
        query_rate_per_s=6.0,
        duration_s=24 * HOUR,
        metrics_window_s=HOUR,
        systems=("flower", "squirrel"),
        tier="paper-scale",
        queue_backend="calendar",
        compact_metrics=True,
    )
)


#: the partition-heal-reconcile story at the genuine Table 1 scale: locality
#: 0 of the 5000-host topology partitions for ~4.8 of the 24 simulated hours
#: and reconciles on heal.  Nightly paper-scale tier; golden at scale 1.0.
LOCALITY_PARTITION_FULL_SCALE = register_scenario(
    ScenarioSpec(
        name="locality-partition-full-scale",
        description=(
            "partition-heal-reconcile at the genuine Table 1 scale: locality "
            "0 of the 5000-host topology is unreachable for the middle fifth "
            "of the 24-hour run, a hotspot rotation lands inside the fault "
            "window, and an explicit reconciliation round runs at the heal "
            "— the paper-scale resilience tier."
        ),
        num_hosts=5000,
        num_localities=6,
        num_websites=100,
        active_websites=6,
        objects_per_website=500,
        max_content_overlay_size=100,
        query_rate_per_s=6.0,
        duration_s=24 * HOUR,
        metrics_window_s=HOUR,
        content_miss_fallback="directory",
        program=(
            WorkloadPhase(duration_s=648 * MINUTE),
            WorkloadPhase(hotspot_rotation=6),
        ),
        fault_model=ModelRef.of(
            "locality-partition",
            at_fraction=0.4,
            duration_fraction=0.2,
            localities=(0,),
            reconcile_on_heal=True,
        ),
        tier="paper-scale",
        queue_backend="calendar",
        compact_metrics=True,
    )
)


def paper_default_full_scale(seed: int = 42) -> ExperimentSetup:
    """The genuine Table 1 setup (24 h, 5000 hosts) for paper-scale runs."""
    return PAPER_DEFAULT_FULL_SCALE.to_setup(seed=seed)
