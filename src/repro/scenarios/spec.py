"""Declarative scenario specifications.

A :class:`ScenarioSpec` captures *everything* one end-to-end simulated run
needs — topology size, catalogue, workload skew, gossip parameters, churn
profile, duration and seed — as a single frozen dataclass.  Specs are the
single source of truth for experiment configurations: the CLI, the benchmark
suite, the examples and the golden-metrics regression tests all build their
:class:`~repro.experiments.driver.ExperimentSetup` through
:meth:`ScenarioSpec.to_setup` instead of repeating parameter dicts.

Specs are value objects: :meth:`ScenarioSpec.scaled` derives a smaller (or
larger) variant that preserves the parameter ratios, and ``dataclasses.replace``
covers ad-hoc tweaks.  The named library of specs lives in
:mod:`repro.scenarios.library`.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.baselines.squirrel import SquirrelConfig
from repro.core.churn import ChurnConfig
from repro.core.config import HOUR, MINUTE, FlowerConfig, GossipConfig
from repro.experiments.driver import ExperimentSetup
from repro.network.topology import TopologyConfig
from repro.scenarios.models import (
    DEFAULT_CHURN_MODEL,
    DEFAULT_FAULT_MODEL,
    ModelRef,
    build_churn_model,
    build_fault_model,
)
from repro.scenarios.program import WorkloadPhase, compile_program, scale_program
from repro.workload.generator import WorkloadConfig
from repro.workload.phases import PhaseSpan

#: system identifiers a scenario may ask to run
KNOWN_SYSTEMS = ("flower", "squirrel")
#: scenario tiers: "standard" runs in the per-PR golden/CI gate, "paper-scale"
#: is the nightly tier (full Table 1 scale, minutes per run)
KNOWN_TIERS = ("standard", "paper-scale")
#: event-queue backends a scenario may pin (see repro.sim.engine)
KNOWN_QUEUE_BACKENDS = ("heap", "calendar")
#: DHT substrates the D-ring layer can run on (see repro.core.dring)
KNOWN_DHT_SUBSTRATES = ("chord", "pastry")


@dataclass(frozen=True)
class ChurnProfile:
    """Churn rates of a scenario (events per hour over the whole system)."""

    content_failures_per_hour: float = 0.0
    directory_failures_per_hour: float = 0.0
    locality_changes_per_hour: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "content_failures_per_hour",
            "directory_failures_per_hour",
            "locality_changes_per_hour",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def is_enabled(self) -> bool:
        return (
            self.content_failures_per_hour > 0
            or self.directory_failures_per_hour > 0
            or self.locality_changes_per_hour > 0
        )

    def to_config(self) -> Optional[ChurnConfig]:
        """The injector configuration, or ``None`` when the profile is idle."""
        if not self.is_enabled:
            return None
        return ChurnConfig(
            content_failures_per_hour=self.content_failures_per_hour,
            directory_failures_per_hour=self.directory_failures_per_hour,
            locality_changes_per_hour=self.locality_changes_per_hour,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified simulation scenario.

    The defaults reproduce the repository's canonical laptop scale (the
    Table 1 parameter ratios shrunk so one run finishes in a couple of
    seconds); ``scaled(factor)`` shrinks or grows a spec while keeping those
    ratios.
    """

    name: str
    description: str = ""

    # -- underlying network ------------------------------------------------
    num_hosts: int = 600
    num_localities: int = 3

    # -- catalogue and overlays --------------------------------------------
    num_websites: int = 20
    active_websites: int = 2
    objects_per_website: int = 200
    max_content_overlay_size: int = 40
    #: optional LRU bound on each content peer's cache (None: unbounded,
    #: the paper's assumption)
    content_cache_capacity: Optional[int] = None
    #: where a content peer sends a query its view cannot resolve: "server"
    #: (the default) or "directory" (the ablation FlowerConfig documents;
    #: resilience scenarios use it so partitions hit the directory path)
    content_miss_fallback: str = "server"

    # -- workload ----------------------------------------------------------
    query_rate_per_s: float = 2.0
    zipf_alpha: float = 0.8
    arrival_process: str = "poisson"
    locality_weights: Tuple[float, ...] = ()
    #: the scenario *program*: an ordered tuple of
    #: :class:`~repro.scenarios.program.WorkloadPhase` values describing a
    #: time-varying workload (empty = one stationary phase, the historical
    #: behaviour; see docs/scenarios.md "Composing scenario programs")
    program: Tuple[WorkloadPhase, ...] = ()

    # -- gossip ------------------------------------------------------------
    gossip_period_s: float = 30 * MINUTE
    gossip_length: int = 10
    view_size: int = 50
    push_threshold: float = 0.1
    keepalive_period_s: Optional[float] = None  # None: same as gossip_period_s

    # -- churn and faults --------------------------------------------------
    churn: ChurnProfile = field(default_factory=ChurnProfile)
    #: which registered churn model consumes the profile ("poisson" is the
    #: historical tick-based injector; see repro.scenarios.models)
    churn_model: ModelRef = field(default_factory=lambda: ModelRef(DEFAULT_CHURN_MODEL))
    #: scheduled disturbance events ("none", "correlated-locality", ...)
    fault_model: ModelRef = field(default_factory=lambda: ModelRef(DEFAULT_FAULT_MODEL))

    # -- run ---------------------------------------------------------------
    duration_s: float = 3 * HOUR
    metrics_window_s: Optional[float] = None  # None: duration_s / 12
    seed: int = 42
    #: which systems the scenario runs, in order ("flower", "squirrel")
    systems: Tuple[str, ...] = ("flower",)
    #: fraction of the run treated as warm-up when splitting phase metrics
    warmup_fraction: float = 0.5
    #: which golden/CI tier the scenario belongs to ("standard" | "paper-scale")
    tier: str = "standard"
    #: event-queue backend the scenario's simulators use ("heap" | "calendar");
    #: both are byte-identical, the choice is purely a performance matter
    queue_backend: str = "heap"
    #: DHT substrate under the D-ring ("chord", the paper's evaluation, or
    #: "pastry", the other overlay named in Section 3.1) — unlike
    #: queue_backend this *changes routing behaviour*, so substrate
    #: scenarios carry their own goldens
    dht_substrate: str = "chord"
    #: fold metrics into compact array reservoirs instead of retaining
    #: per-query records (the paper-scale memory mode)
    compact_metrics: bool = False
    #: space-parallel shard count: 1 (the default) runs the historical
    #: single-process path; N >= 2 partitions the queryable websites over N
    #: shard engines advanced in conservative windows (flower-only,
    #: churn-free specs with time-driven fault models — see
    #: repro.core.sharding and docs/performance.md)
    shards: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.systems:
            raise ValueError("a scenario must run at least one system")
        if self.tier not in KNOWN_TIERS:
            raise ValueError(f"unknown tier {self.tier!r}; expected one of {KNOWN_TIERS}")
        if self.queue_backend not in KNOWN_QUEUE_BACKENDS:
            raise ValueError(
                f"unknown queue backend {self.queue_backend!r}; "
                f"expected one of {KNOWN_QUEUE_BACKENDS}"
            )
        if self.dht_substrate not in KNOWN_DHT_SUBSTRATES:
            raise ValueError(
                f"unknown DHT substrate {self.dht_substrate!r}; "
                f"expected one of {KNOWN_DHT_SUBSTRATES}"
            )
        for system in self.systems:
            if system not in KNOWN_SYSTEMS:
                raise ValueError(
                    f"unknown system {system!r}; expected one of {KNOWN_SYSTEMS}"
                )
        if len(set(self.systems)) != len(self.systems):
            raise ValueError("systems must not repeat")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.keepalive_period_s is not None and self.keepalive_period_s <= 0:
            raise ValueError("keepalive_period_s must be positive or None")
        if self.metrics_window_s is not None and self.metrics_window_s <= 0:
            raise ValueError("metrics_window_s must be positive or None")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shards > 1:
            # Fail at construction time, not mid-run: sharding supports only
            # churn-free flower scenarios with time-driven fault models.
            from repro.core.sharding import validate_shardable

            validate_shardable(self)
        if "squirrel" in self.systems:
            # The Squirrel baseline has no churn/fault-injection support;
            # allowing dynamicity here would silently present an unfair
            # comparison (churned Flower-CDN vs churn-free Squirrel) as
            # same-conditions.
            if self.churn.is_enabled:
                raise ValueError("churn profiles only apply to 'flower' scenarios")
            if self.churn_model.name != DEFAULT_CHURN_MODEL and self.churn_model.name != "none":
                raise ValueError("churn models only apply to 'flower' scenarios")
            if self.fault_model.name != DEFAULT_FAULT_MODEL:
                raise ValueError("fault models only apply to 'flower' scenarios")
        # Resolve the model references eagerly so an unknown model name or a
        # bad parameter fails at construction time, not mid-run.
        build_churn_model(self.churn_model)
        build_fault_model(self.fault_model)
        # Compile the program eagerly: phases must tile [0, duration_s).
        self.compiled_program()
        # The remaining fields are validated by the config objects they feed
        # (FlowerConfig, WorkloadConfig, TopologyConfig) in to_setup(); build
        # them eagerly so an invalid spec fails at construction time.
        self.to_setup()

    # -- derived -----------------------------------------------------------

    @property
    def effective_metrics_window_s(self) -> float:
        if self.metrics_window_s is not None:
            return self.metrics_window_s
        return max(60.0, self.duration_s / 12.0)

    @property
    def effective_keepalive_period_s(self) -> float:
        if self.keepalive_period_s is not None:
            return self.keepalive_period_s
        return self.gossip_period_s

    @property
    def warmup_s(self) -> float:
        """Absolute warm-up horizon separating the two metric phases."""
        return self.warmup_fraction * self.duration_s

    def locality_bits(self) -> int:
        """Identifier bits needed to encode ``num_localities`` (min. 3)."""
        return max(3, math.ceil(math.log2(max(2, self.num_localities))))

    def compiled_program(self) -> Tuple[PhaseSpan, ...]:
        """The program compiled to absolute, contiguous workload spans."""
        return compile_program(self.program, self.duration_s)

    # -- construction of the runtime configuration -------------------------

    def to_flower_config(self, seed: Optional[int] = None) -> FlowerConfig:
        return FlowerConfig(
            num_websites=self.num_websites,
            active_websites=self.active_websites,
            objects_per_website=self.objects_per_website,
            num_localities=self.num_localities,
            max_content_overlay_size=self.max_content_overlay_size,
            content_cache_capacity=self.content_cache_capacity,
            content_miss_fallback=self.content_miss_fallback,
            locality_bits=self.locality_bits(),
            dht_substrate=self.dht_substrate,
            gossip=GossipConfig(
                gossip_period_s=self.gossip_period_s,
                view_size=self.view_size,
                gossip_length=self.gossip_length,
                push_threshold=self.push_threshold,
                keepalive_period_s=self.effective_keepalive_period_s,
            ),
            simulation_duration_s=self.duration_s,
            metrics_window_s=self.effective_metrics_window_s,
            seed=self.seed if seed is None else seed,
        )

    def to_setup(self, seed: Optional[int] = None) -> ExperimentSetup:
        """Compose the :class:`ExperimentSetup` this scenario describes."""
        flower = self.to_flower_config(seed=seed)
        return ExperimentSetup(
            flower=flower,
            topology=TopologyConfig(
                num_hosts=self.num_hosts,
                num_localities=self.num_localities,
                locality_weights=self.locality_weights,
            ),
            workload=WorkloadConfig(
                num_websites=self.num_websites,
                active_websites=self.active_websites,
                objects_per_website=self.objects_per_website,
                num_localities=self.num_localities,
                query_rate_per_s=self.query_rate_per_s,
                zipf_alpha=self.zipf_alpha,
                arrival_process=self.arrival_process,
                locality_weights=self.locality_weights,
            ),
            squirrel=SquirrelConfig(metrics_window_s=flower.metrics_window_s),
            seed=self.seed if seed is None else seed,
            queue_backend=self.queue_backend,
            compact_metrics=self.compact_metrics,
            phases=self.compiled_program(),
        )

    # -- derivation --------------------------------------------------------

    def scaled(self, factor: float) -> "ScenarioSpec":
        """A ratio-preserving smaller/larger variant of this scenario.

        Population sizes, catalogue sizes and the duration shrink linearly
        with ``factor`` (bounded below so the result stays a valid, meaningful
        simulation); rates, skews and gossip parameters are scale-free and
        stay untouched.  Used by the golden-metrics suite and the fast tests.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        num_websites = max(self.active_websites, round(self.num_websites * factor))
        duration_s = max(900.0, self.duration_s * factor)
        capacity = self.content_cache_capacity
        if capacity is not None:
            capacity = max(5, round(capacity * factor))
        return replace(
            self,
            num_hosts=max(60, round(self.num_hosts * factor)),
            num_websites=num_websites,
            objects_per_website=max(20, round(self.objects_per_website * factor)),
            max_content_overlay_size=max(8, round(self.max_content_overlay_size * factor)),
            content_cache_capacity=capacity,
            duration_s=duration_s,
            # Phase durations shrink with the run itself (the duration floor
            # means the effective factor can differ from ``factor``).
            program=scale_program(self.program, duration_s / self.duration_s),
            metrics_window_s=None,
        )

    def with_seed(self, seed: int) -> "ScenarioSpec":
        return replace(self, seed=seed)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable description (recorded in golden files)."""
        data = asdict(self)
        data["systems"] = list(self.systems)
        data["locality_weights"] = list(self.locality_weights)
        data["program"] = [phase.to_dict() for phase in self.program]
        data["churn_model"] = self.churn_model.to_dict()
        data["fault_model"] = self.fault_model.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from its :meth:`to_dict` description.

        The inverse of :meth:`to_dict` — ``ScenarioSpec.from_dict(spec.to_dict())``
        reproduces ``spec`` exactly, including the nested churn profile, model
        references and workload program.  This is how external representations
        (golden files, the ``repro serve`` HTTP API) turn back into runnable
        specs; unknown keys are rejected so a typo fails loudly instead of
        silently running the defaults.
        """
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown ScenarioSpec field(s): {', '.join(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs: Dict[str, object] = dict(data)
        churn = kwargs.get("churn")
        if isinstance(churn, Mapping):
            kwargs["churn"] = ChurnProfile(**{str(k): v for k, v in churn.items()})
        for key in ("churn_model", "fault_model"):
            ref = kwargs.get(key)
            if isinstance(ref, str):
                kwargs[key] = ModelRef(ref)
            elif isinstance(ref, Mapping):
                params = ref.get("params", {})
                if not isinstance(params, Mapping):
                    raise ValueError(f"{key}.params must be a mapping")
                kwargs[key] = ModelRef.of(
                    str(ref.get("name", "")),
                    **{str(k): _freeze_value(v) for k, v in params.items()},
                )
        program = kwargs.get("program")
        if program is not None:
            if not isinstance(program, (list, tuple)):
                raise ValueError("program must be a list of phase objects")
            kwargs["program"] = tuple(
                phase
                if isinstance(phase, WorkloadPhase)
                else WorkloadPhase(**{str(k): v for k, v in dict(phase).items()})
                for phase in program
            )
        weights = kwargs.get("locality_weights")
        if weights is not None:
            if not isinstance(weights, (list, tuple)):
                raise ValueError("locality_weights must be a list of numbers")
            kwargs["locality_weights"] = tuple(weights)
        systems = kwargs.get("systems")
        if systems is not None:
            if not isinstance(systems, (list, tuple)):
                raise ValueError("systems must be a list of system names")
            kwargs["systems"] = tuple(systems)
        return cls(**kwargs)  # type: ignore[arg-type]


def _freeze_value(value: object) -> object:
    """JSON-decoded model parameters, hashable again (lists become tuples)."""
    if isinstance(value, list):
        return tuple(_freeze_value(item) for item in value)
    return value
