"""Golden-metrics regression facility.

Every library scenario has a committed golden file (``tests/goldens/<name>.json``)
holding its rounded metrics digest at a fixed reduced scale and seed.  The
golden suite re-runs each scenario and compares the fresh digest against the
committed one **with per-metric tolerances**, so any refactor of the hot path
(``core/system.py``, ``sim/engine.py``, overlay routing, workload generation)
is regression-checked end to end:

* a pure refactor reproduces the digest exactly (runs are deterministic);
* a small intentional behaviour change stays inside the tolerances;
* a real regression (hit ratio collapse, latency blow-up, lost queries)
  fails with a per-metric diff.

Workflow::

    python -m repro.scenarios.golden --check            # CI / make test
    python -m repro.scenarios.golden --update           # refresh after an
                                                        # intentional change
    python -m repro.cli scenarios run NAME --check-golden

``make goldens`` wraps ``--update``.  See ``docs/scenarios.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO

from repro.scenarios.library import get_scenario, scenario_names
from repro.scenarios.runner import ScenarioResult, run_scenario
from repro.scenarios.spec import ScenarioSpec

#: scale factor applied to *standard-tier* library scenarios when producing
#: goldens — small enough that the whole suite runs in seconds, large enough
#: that the paper's qualitative behaviour (warm-up, locality gains) is still
#: visible.  Paper-scale-tier scenarios are pinned at scale 1.0 — their whole
#: point is the genuine Table 1 configuration — and are verified by the
#: nightly job instead of the per-PR gate.
GOLDEN_SCALE = 0.25
#: the seed golden digests are pinned to
GOLDEN_SEED = 42
#: decimal places kept in golden digests
GOLDEN_PRECISION = 6


@dataclass(frozen=True)
class Tolerance:
    """Acceptance band for one metric: ``|actual - expected|`` must not
    exceed ``max(absolute, relative * |expected|)``."""

    relative: float = 0.0
    absolute: float = 0.0

    def allows(self, expected: float, actual: float) -> bool:
        return abs(actual - expected) <= max(self.absolute, self.relative * abs(expected))


EXACT = Tolerance()

#: default per-metric tolerances; anything not listed is compared exactly,
#: and ``fraction_*`` metrics share the FRACTION band
DEFAULT_TOLERANCES: Dict[str, Tolerance] = {
    "num_queries": EXACT,  # the trace itself must not change silently
    "hit_ratio": Tolerance(absolute=0.02),
    "average_lookup_latency_ms": Tolerance(relative=0.05, absolute=5.0),
    "average_transfer_distance_ms": Tolerance(relative=0.05, absolute=5.0),
    "background_bps_per_peer": Tolerance(relative=0.05, absolute=1.0),
    "redirection_failures": Tolerance(relative=0.25, absolute=10.0),
    "average_overlay_hops": Tolerance(relative=0.10, absolute=0.2),
    # phase aggregates are means over few windows, hence slightly looser
    "phase:hit_ratio": Tolerance(absolute=0.03),
    "phase:lookup_latency_ms": Tolerance(relative=0.08, absolute=10.0),
    "phase:transfer_distance_ms": Tolerance(relative=0.08, absolute=10.0),
    # resilience block (faulted runs only); the window-based metrics aggregate
    # few windows, the counters shift with any hot-path change near the fault
    "resilience_hit_ratio_pre_fault": Tolerance(absolute=0.03),
    "resilience_availability_during_fault": Tolerance(absolute=0.03),
    "resilience_time_to_recover_s": Tolerance(relative=0.5, absolute=300.0),
    "resilience_messages_blocked": Tolerance(relative=0.25, absolute=20.0),
    "resilience_retries_exhausted": Tolerance(relative=0.5, absolute=10.0),
    "resilience_server_fallbacks": Tolerance(relative=0.25, absolute=20.0),
}
FRACTION_TOLERANCE = Tolerance(absolute=0.02)


def _tolerance_for(metric: str, phase: bool = False) -> Tolerance:
    if metric.startswith("fraction_"):
        return FRACTION_TOLERANCE
    key = f"phase:{metric}" if phase else metric
    return DEFAULT_TOLERANCES.get(key, EXACT)


# -- locations ---------------------------------------------------------------


def default_golden_dir() -> Path:
    """``tests/goldens`` of this checkout (overridable via REPRO_GOLDEN_DIR)."""
    override = os.environ.get("REPRO_GOLDEN_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "tests" / "goldens"


def golden_path(name: str, golden_dir: Optional[Path] = None) -> Path:
    directory = golden_dir if golden_dir is not None else default_golden_dir()
    return directory / f"{name}.json"


# -- producing digests -------------------------------------------------------


def golden_scale_for(name: str) -> float:
    """The scale a scenario's golden digest is pinned to (tier-dependent)."""
    return 1.0 if get_scenario(name).tier == "paper-scale" else GOLDEN_SCALE


def golden_spec(name: str) -> ScenarioSpec:
    """The library scenario at the scale goldens are pinned to."""
    spec = get_scenario(name)
    scale = golden_scale_for(name)
    return spec if scale == 1.0 else spec.scaled(scale)


def compute_golden_digest(
    name: str, kernel: bool = False, shards: int = 1
) -> Dict[str, object]:
    """Run ``name`` at golden scale/seed and return the digest to commit.

    ``kernel=True`` runs on the columnar kernel backend; since the backends
    are digest-identical the result must match the committed golden either
    way — which is exactly what the kernel-equivalence gate checks.
    ``shards >= 2`` runs the space-parallel shard engine, which is likewise
    digest-identical to the single-process path — the sharded-equivalence
    gate compares it against the very same committed goldens.
    """
    result = run_scenario(
        golden_spec(name), seed=GOLDEN_SEED, kernel=kernel, shards=shards
    )
    return result_digest(result, scale=golden_scale_for(name))


def result_digest(result: ScenarioResult, scale: float = GOLDEN_SCALE) -> Dict[str, object]:
    digest = result.metrics_digest(precision=GOLDEN_PRECISION)
    digest["scale"] = scale
    return digest


def write_golden(name: str, golden_dir: Optional[Path] = None) -> Path:
    path = golden_path(name, golden_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    digest = compute_golden_digest(name)
    path.write_text(json.dumps(digest, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_golden(name: str, golden_dir: Optional[Path] = None) -> Dict[str, object]:
    path = golden_path(name, golden_dir)
    if not path.exists():
        raise FileNotFoundError(
            f"no golden committed for scenario {name!r} (expected {path}); "
            f"run `python -m repro.scenarios.golden --update {name}`"
        )
    return json.loads(path.read_text(encoding="utf-8"))


# -- comparison --------------------------------------------------------------


def compare_digests(
    expected: Dict[str, object], actual: Dict[str, object]
) -> List[str]:
    """Per-metric differences between two digests (empty list = match)."""
    mismatches: List[str] = []
    for field in ("scenario", "seed", "scale"):
        if expected.get(field) != actual.get(field):
            mismatches.append(
                f"{field}: golden={expected.get(field)!r} actual={actual.get(field)!r}"
            )
    expected_systems = expected.get("systems", {})
    actual_systems = actual.get("systems", {})
    for system in sorted(set(expected_systems) | set(actual_systems)):
        if system not in actual_systems:
            mismatches.append(f"{system}: missing from the fresh run")
            continue
        if system not in expected_systems:
            mismatches.append(f"{system}: not present in the golden")
            continue
        mismatches.extend(
            _compare_metric_block(
                expected_systems[system].get("metrics", {}),
                actual_systems[system].get("metrics", {}),
                prefix=f"{system}.metrics",
                phase=False,
            )
        )
        expected_phases = expected_systems[system].get("phases", {})
        actual_phases = actual_systems[system].get("phases", {})
        for phase in sorted(set(expected_phases) | set(actual_phases)):
            mismatches.extend(
                _compare_metric_block(
                    expected_phases.get(phase, {}),
                    actual_phases.get(phase, {}),
                    prefix=f"{system}.phases.{phase}",
                    phase=True,
                )
            )
    return mismatches


def _compare_metric_block(
    expected: Dict[str, float], actual: Dict[str, float], prefix: str, phase: bool
) -> List[str]:
    mismatches: List[str] = []
    for metric in sorted(set(expected) | set(actual)):
        if metric.startswith("fraction_"):
            # Outcome fractions only appear in a digest when the outcome was
            # observed at least once; a rare outcome drifting to/from zero is
            # an ordinary tolerance question, not a missing metric.
            if not FRACTION_TOLERANCE.allows(
                float(expected.get(metric, 0.0)), float(actual.get(metric, 0.0))
            ):
                mismatches.append(
                    f"{prefix}.{metric}: golden={expected.get(metric, 0.0)} "
                    f"actual={actual.get(metric, 0.0)} "
                    f"(tolerance abs={FRACTION_TOLERANCE.absolute})"
                )
            continue
        if metric not in actual:
            mismatches.append(f"{prefix}.{metric}: missing from the fresh run")
            continue
        if metric not in expected:
            mismatches.append(f"{prefix}.{metric}: not present in the golden")
            continue
        tolerance = _tolerance_for(metric, phase=phase)
        if not tolerance.allows(float(expected[metric]), float(actual[metric])):
            mismatches.append(
                f"{prefix}.{metric}: golden={expected[metric]} actual={actual[metric]} "
                f"(tolerance rel={tolerance.relative} abs={tolerance.absolute})"
            )
    return mismatches


def verify_golden(
    name: str,
    golden_dir: Optional[Path] = None,
    kernel: bool = False,
    shards: int = 1,
) -> List[str]:
    """Re-run ``name`` at golden scale and diff against the committed file."""
    expected = load_golden(name, golden_dir)
    actual = compute_golden_digest(name, kernel=kernel, shards=shards)
    return compare_digests(expected, actual)


# -- command line (used by `make goldens` / CI) ------------------------------


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro.scenarios.golden",
        description="check or regenerate the committed golden-metrics files",
    )
    parser.add_argument("names", nargs="*",
                        help="scenario names (default: the selected tier)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the goldens instead of checking them")
    parser.add_argument("--tier", choices=("standard", "paper-scale", "all"),
                        default="standard",
                        help="which tier to cover when no names are given "
                             "(default: standard; the paper-scale tier takes "
                             "minutes per scenario and runs nightly)")
    parser.add_argument("--golden-dir", type=Path, default=None)
    parser.add_argument("--kernel", action="store_true",
                        help="run on the columnar kernel backend; the digest "
                             "must still match the committed golden byte for "
                             "byte (the kernel-equivalence gate)")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="run through the space-parallel shard engine "
                             "with N shards; the digest must still match the "
                             "committed golden byte for byte (the "
                             "sharded-equivalence gate).  Only shardable "
                             "scenarios qualify — see repro.core.sharding.")
    args = parser.parse_args(argv)

    if args.kernel and args.update:
        print("error: --kernel cannot be combined with --update; goldens are "
              "produced by the default object backend (the kernel must match "
              "them, not define them)", file=out)
        return 2
    if args.shards != 1 and args.update:
        print("error: --shards cannot be combined with --update; goldens are "
              "produced by the single-process path (sharded runs must match "
              "them, not define them)", file=out)
        return 2
    if args.shards < 1:
        print("error: --shards must be >= 1", file=out)
        return 2

    if args.names:
        names = list(args.names)
    elif args.tier == "all":
        names = scenario_names()
    else:
        names = scenario_names(tier=args.tier)
    unknown = [name for name in names if name not in scenario_names()]
    if unknown:
        print(f"error: unknown scenario(s): {', '.join(unknown)}; "
              f"known scenarios: {', '.join(scenario_names())}", file=out)
        return 2
    failures = 0
    for name in names:
        if args.update:
            path = write_golden(name, args.golden_dir)
            print(f"updated {path}", file=out)
            continue
        try:
            mismatches = verify_golden(
                name, args.golden_dir, kernel=args.kernel, shards=args.shards
            )
        except FileNotFoundError as error:
            print(f"FAIL {name}: {error}", file=out)
            failures += 1
            continue
        if mismatches:
            failures += 1
            print(f"FAIL {name}:", file=out)
            for mismatch in mismatches:
                print(f"  {mismatch}", file=out)
        else:
            print(f"ok   {name}", file=out)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
