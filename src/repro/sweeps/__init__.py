"""Declarative parameter-sweep subsystem.

Single scenario runs flow ``ScenarioSpec → Session → golden``; this package
gives run *families* the same treatment: a frozen
:class:`~repro.sweeps.spec.SweepSpec` (base scenario + ordered
:class:`~repro.sweeps.spec.SweepAxis` grid) compiles into one derived
``ScenarioSpec`` per grid cell with deterministic per-cell seeds, executes
through the :class:`~repro.session.Session` facade — sequentially or over a
process pool, byte-identically — and folds into a
:class:`~repro.sweeps.engine.SweepResult` table with tolerance-checked
goldens (:mod:`repro.sweeps.golden`) and CSV/JSON/markdown artifact export
(:mod:`repro.sweeps.artifacts`).  The paper's multi-run experiments (the
Table 2 grids, the ablations, Figure 6) are registered in
:mod:`repro.sweeps.library`; CLI: ``repro sweep list|show|run``.
"""

from repro.sweeps.spec import (
    CompiledSweep,
    SweepAxis,
    SweepCell,
    SweepSpec,
    derive_cell_seed,
)
from repro.sweeps.engine import SweepCellResult, SweepResult, run_sweep
from repro.sweeps.library import (
    get_sweep,
    iter_sweeps,
    register_sweep,
    sweep_names,
    unregister_sweep,
)
from repro.sweeps.artifacts import export_artifacts, format_sweep_result

__all__ = [
    "CompiledSweep",
    "SweepAxis",
    "SweepCell",
    "SweepSpec",
    "derive_cell_seed",
    "SweepCellResult",
    "SweepResult",
    "run_sweep",
    "get_sweep",
    "iter_sweeps",
    "register_sweep",
    "sweep_names",
    "unregister_sweep",
    "export_artifacts",
    "format_sweep_result",
]
