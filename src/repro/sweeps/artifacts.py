"""Sweep artifact writers: one result table, three formats.

A :class:`~repro.sweeps.engine.SweepResult` renders to:

* **CSV** — one row per grid cell, one column per axis plus
  ``<system>.<metric>`` columns, then the cell seed and digest (what CI
  uploads as the sweep artifact);
* **JSON** — the canonical ``SweepResult.to_dict()`` digest (the same
  payload the sweep goldens commit);
* **Markdown** — a GitHub-flavoured table for docs and PR descriptions.

``export_artifacts`` writes all requested formats into a directory, named
``<sweep-name>.<ext>``, and is what ``repro sweep run --out DIR`` calls.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.metrics.report import format_table
from repro.sweeps.engine import SweepResult

__all__ = [
    "KNOWN_FORMATS",
    "result_table",
    "to_csv",
    "to_markdown",
    "format_sweep_result",
    "export_artifacts",
]

KNOWN_FORMATS = ("csv", "json", "md")


def result_table(result: SweepResult) -> Tuple[List[str], List[List[object]]]:
    """The flat (header, rows) table behind every artifact format."""
    axis_labels = [axis.label for axis in result.sweep.axes]
    systems = result.systems()
    metric_columns = [
        (system, metric)
        for system in systems
        for metric in result.metric_names(system)
    ]
    single_system = len(systems) == 1
    header = list(axis_labels)
    header.extend(
        metric if single_system else f"{system}.{metric}"
        for system, metric in metric_columns
    )
    header.extend(("seed", "digest"))

    rows: List[List[object]] = []
    for cell in result.cells:
        row: List[object] = [value for _, value in cell.labels]
        for system, metric in metric_columns:
            row.append(cell.systems.get(system, {}).get("metrics", {}).get(metric, ""))
        row.append(cell.seed)
        row.append(cell.digest)
        rows.append(row)
    return header, rows


def to_csv(result: SweepResult) -> str:
    header, rows = result_table(result)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue()


def to_markdown(result: SweepResult) -> str:
    header, rows = result_table(result)
    lines = [
        f"# Sweep: {result.sweep.name}",
        "",
        result.sweep.description.strip(),
        "",
        f"base scenario: `{result.base}` · scale: {result.scale:g} · "
        f"base seed: {result.base_seed} · seed policy: {result.sweep.seed_policy}",
        "",
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(value) for value in row) + " |")
    lines.append("")
    return "\n".join(lines)


def format_sweep_result(result: SweepResult) -> str:
    """A terminal table of the grid (digests elided for width)."""
    header, rows = result_table(result)
    # Drop the digest column for terminal display; it is 64 hex chars wide.
    header = header[:-1]
    rows = [row[:-1] for row in rows]
    title = f"Sweep: {result.sweep.name} (base {result.base}, scale {result.scale:g})"
    return format_table(header, [tuple(row) for row in rows], title=title)


def export_artifacts(
    result: SweepResult,
    out_dir: Path,
    formats: Iterable[str] = KNOWN_FORMATS,
) -> List[Path]:
    """Write the requested artifact formats; returns the paths written."""
    formats = tuple(formats)
    unknown = [fmt for fmt in formats if fmt not in KNOWN_FORMATS]
    if unknown:
        raise ValueError(
            f"unknown artifact format(s) {unknown}; expected a subset of {KNOWN_FORMATS}"
        )
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for fmt in formats:
        path = out_dir / f"{result.sweep.name}.{fmt}"
        if fmt == "csv":
            path.write_text(to_csv(result), encoding="utf-8")
        elif fmt == "json":
            path.write_text(
                json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        else:
            path.write_text(to_markdown(result), encoding="utf-8")
        written.append(path)
    return written
