"""Sweep execution: a compiled grid in, a deterministic result table out.

Every cell of a :class:`~repro.sweeps.spec.CompiledSweep` runs through the
:class:`~repro.session.Session` facade — exactly the execution path of a
single scenario run — and folds into a :class:`SweepResult`: per cell, the
axis assignments, the seed, the per-system metric/phase blocks (rounded the
same way scenario goldens are) and a SHA-256 digest of the cell's full
metrics digest for byte-identity checks.

Cells are independent deterministic functions of ``(spec, seed)``, so they
parallelise over the existing process-pool machinery
(:func:`repro.scenarios.parallel.map_tasks`); ``jobs=N`` output is
byte-identical to sequential output.  Sequential runs additionally keep the
full :class:`~repro.scenarios.runner.ScenarioResult` attached to each cell
(``cell.result``) so in-process consumers — the benchmark suite needs the
Figure 6 time series — can reach the layers below the digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.scenarios.golden import GOLDEN_PRECISION
from repro.scenarios.parallel import map_tasks
from repro.scenarios.runner import ScenarioResult
from repro.scenarios.spec import ScenarioSpec
from repro.session import Session
from repro.sweeps.spec import CompiledSweep, SweepSpec

__all__ = ["SweepCellResult", "SweepResult", "run_sweep"]

#: headline metrics, in the order artifacts and tables present them; any
#: further metrics a run reports (e.g. ``fraction_*``) follow alphabetically
PREFERRED_METRIC_ORDER = (
    "num_queries",
    "hit_ratio",
    "average_lookup_latency_ms",
    "average_transfer_distance_ms",
    "background_bps_per_peer",
    "redirection_failures",
    "average_overlay_hops",
)


@dataclass
class SweepCellResult:
    """One executed grid cell (serialisable; ``result`` rides along in-process)."""

    coordinates: Tuple[int, ...]
    labels: Tuple[Tuple[str, str], ...]
    assignments: Dict[str, object]
    seed: int
    #: system name -> {"metrics": {...}, "phases": {...}} (golden-rounded)
    systems: Dict[str, Dict[str, Dict[str, float]]]
    #: SHA-256 of the cell's canonical metrics digest (byte-identity witness)
    digest: str
    result: Optional[ScenarioResult] = field(default=None, repr=False, compare=False)

    def metric(self, metric: str, system: str = "flower") -> float:
        return self.systems[system]["metrics"][metric]

    def to_dict(self) -> Dict[str, object]:
        return {
            "coordinates": list(self.coordinates),
            "labels": [[label, value] for label, value in self.labels],
            "assignments": dict(self.assignments),
            "seed": self.seed,
            "digest": self.digest,
            "systems": self.systems,
        }


@dataclass
class SweepResult:
    """The structured outcome of one sweep run (the golden-file payload)."""

    sweep: SweepSpec
    base: str
    base_seed: int
    scale: float
    cells: Tuple[SweepCellResult, ...]

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def cell(self, **assignments: object) -> SweepCellResult:
        """The unique cell whose assignments include all given pins."""
        matches = [
            cell
            for cell in self.cells
            if all(cell.assignments.get(key) == value for key, value in assignments.items())
        ]
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} cells match {assignments!r} "
                f"(sweep {self.sweep.name!r} has {len(self.cells)} cells)"
            )
        return matches[0]

    def systems(self) -> List[str]:
        """System names present in the cells, in first-seen order."""
        seen: List[str] = []
        for cell in self.cells:
            for system in cell.systems:
                if system not in seen:
                    seen.append(system)
        return seen

    def metric_names(self, system: str) -> List[str]:
        """Metric names of one system: preferred order first, rest sorted."""
        present: set = set()
        for cell in self.cells:
            present.update(cell.systems.get(system, {}).get("metrics", {}))
        ordered = [name for name in PREFERRED_METRIC_ORDER if name in present]
        ordered.extend(sorted(present - set(ordered)))
        return ordered

    def series(self, metric: str, system: str = "flower") -> List[float]:
        """One metric across all cells, in grid order."""
        return [cell.metric(metric, system=system) for cell in self.cells]

    def to_dict(self) -> Dict[str, object]:
        """The canonical, JSON-serialisable sweep digest."""
        return {
            "sweep": self.sweep.name,
            "base": self.base,
            "base_seed": self.base_seed,
            "scale": self.scale,
            "seed_policy": self.sweep.seed_policy,
            "axes": [axis.to_dict() for axis in self.sweep.axes],
            "cells": [cell.to_dict() for cell in self.cells],
        }


# -- cell execution (module-level for picklability) ---------------------------


def _cell_payload(result: ScenarioResult) -> Tuple[Dict[str, object], str]:
    """Golden-rounded per-system blocks plus the cell's canonical SHA-256."""
    digest = result.metrics_digest(precision=GOLDEN_PRECISION)
    blob = json.dumps(digest, sort_keys=True)
    return digest["systems"], hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _execute_cell_task(task: Tuple[ScenarioSpec, int]) -> Tuple[Dict[str, object], str]:
    spec, seed = task
    return _cell_payload(Session(spec, seed=seed).run())


def _grid_chunksize(num_tasks: int, jobs: int) -> int:
    """Dispatch batch size for a grid: ~4 batches per worker, capped at 8.

    Large grids (hundreds of cells) amortise pickling/IPC per batch;
    small grids keep chunksize 1 so every worker stays busy.
    """
    return max(1, min(8, num_tasks // (4 * max(1, jobs))))


# -- public API ---------------------------------------------------------------


def run_sweep(
    sweep: Union[str, SweepSpec, CompiledSweep],
    jobs: int = 1,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    base_spec: Optional[ScenarioSpec] = None,
) -> SweepResult:
    """Run every cell of a sweep and fold the grid into a :class:`SweepResult`.

    ``sweep`` may be a registered sweep name, a :class:`SweepSpec`, or an
    already-compiled grid.  ``jobs=1`` (the default) runs sequentially and
    keeps each cell's full :class:`ScenarioResult` attached; ``jobs=N``
    fans the cells over a process pool with byte-identical ``to_dict()``
    output.  ``seed``/``scale``/``base_spec`` are compile-time overrides
    (ignored when ``sweep`` is already compiled).
    """
    if isinstance(sweep, str):
        from repro.sweeps.library import get_sweep

        sweep = get_sweep(sweep)
    if isinstance(sweep, SweepSpec):
        compiled = sweep.compile(base_spec=base_spec, seed=seed, scale=scale)
    else:
        compiled = sweep
    if jobs is None:
        jobs = 1
    tasks = [(cell.spec, cell.seed) for cell in compiled.cells]
    if jobs == 1 or len(tasks) <= 1:
        outcomes = []
        for spec, cell_seed in tasks:
            result = Session(spec, seed=cell_seed).run()
            systems, sha = _cell_payload(result)
            outcomes.append((systems, sha, result))
    else:
        outcomes = [
            (systems, sha, None)
            for systems, sha in map_tasks(
                _execute_cell_task,
                tasks,
                jobs=jobs,
                chunksize=_grid_chunksize(len(tasks), jobs),
            )
        ]
    cells = tuple(
        SweepCellResult(
            coordinates=cell.coordinates,
            labels=cell.labels,
            assignments=cell.assignment_dict(),
            seed=cell.seed,
            systems=systems,
            digest=sha,
            result=result,
        )
        for cell, (systems, sha, result) in zip(compiled.cells, outcomes)
    )
    return SweepResult(
        sweep=compiled.sweep,
        base=compiled.base_name,
        base_seed=compiled.base_seed,
        scale=compiled.scale,
        cells=cells,
    )
