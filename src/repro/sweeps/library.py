"""The named sweep registry: the paper's multi-run experiments, declaratively.

Each entry compiles a family of runs the evaluation section reports as one
table or figure — the Table 2(a–c) gossip-parameter grids, the churn and
push-threshold ablations, and the Figure 6 Flower-CDN-vs-Squirrel hit-ratio
comparison.  The benchmark suite (``benchmarks/test_table2*``,
``test_ablation_churn``, ``test_ablation_push_threshold``, ``test_fig6_*``)
sources its configurations from here, and every sweep has a committed
tolerance-checked golden under ``tests/goldens/sweeps/`` (see
:mod:`repro.sweeps.golden`).

All paper sweeps use ``seed_policy="shared"`` — common random numbers, the
paper's own design: every cell processes the same workload trace and only
the swept parameter differs, so cross-cell comparisons (bandwidth ratios,
hit-ratio orderings) are paired, not independent samples.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

# The canonical Table 2 parameter values have always lived with the legacy
# setup-based sweep functions; importing them keeps one source of truth
# without creating an import cycle (sweeps -> experiments, never back).
from repro.experiments.gossip_tradeoff import (
    PAPER_GOSSIP_LENGTHS,
    PAPER_GOSSIP_PERIODS_S,
    PAPER_PUSH_THRESHOLDS,
    PAPER_VIEW_SIZES,
)
from repro.scenarios.library import get_scenario
from repro.scenarios.models import ModelRef
from repro.scenarios.spec import ChurnProfile
from repro.sweeps.spec import SweepAxis, SweepSpec

__all__ = [
    "register_sweep",
    "unregister_sweep",
    "get_sweep",
    "sweep_names",
    "iter_sweeps",
]

_REGISTRY: Dict[str, SweepSpec] = {}


def register_sweep(sweep: SweepSpec, overwrite: bool = False) -> SweepSpec:
    """Add ``sweep`` to the registry under ``sweep.name``."""
    if sweep.name in _REGISTRY and not overwrite:
        raise ValueError(f"sweep {sweep.name!r} is already registered")
    _REGISTRY[sweep.name] = sweep
    return sweep


def unregister_sweep(name: str) -> None:
    """Remove a sweep (used by tests that register temporary sweeps)."""
    _REGISTRY.pop(name, None)


def get_sweep(name: str) -> SweepSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sweep_names())
        raise KeyError(f"unknown sweep {name!r}; known sweeps: {known}") from None


def sweep_names() -> List[str]:
    return sorted(_REGISTRY)


def iter_sweeps() -> Iterator[SweepSpec]:
    for name in sweep_names():
        yield _REGISTRY[name]


# -- the built-in registry ----------------------------------------------------

register_sweep(
    SweepSpec(
        name="table2a-gossip-length",
        description=(
            "Table 2(a): hit ratio vs background bandwidth when varying "
            "Lgossip (Tgossip = 30 min, Vgossip = 50)."
        ),
        base="paper-default",
        axes=(SweepAxis.single("Lgossip", "gossip_length", PAPER_GOSSIP_LENGTHS),),
    )
)

register_sweep(
    SweepSpec(
        name="table2b-gossip-period",
        description=(
            "Table 2(b): hit ratio vs background bandwidth when varying "
            "Tgossip (Lgossip = 10, Vgossip = 50); the keepalive period "
            "moves in lockstep, as in the paper's setup."
        ),
        base="paper-default",
        axes=(
            SweepAxis(
                label="Tgossip(s)",
                fields=("gossip_period_s", "keepalive_period_s"),
                values=tuple(
                    (float(period), float(period)) for period in PAPER_GOSSIP_PERIODS_S
                ),
            ),
        ),
    )
)

# The legacy sweep clamped Lgossip to the view size against the *base*
# configuration (a view cannot be gossiped about in messages longer than
# itself); derive the clamp from the base scenario so retuning paper-default
# keeps both code paths equivalent.
_BASE_GOSSIP_LENGTH = get_scenario("paper-default").gossip_length

register_sweep(
    SweepSpec(
        name="table2c-view-size",
        description=(
            "Table 2(c): hit ratio vs background bandwidth when varying "
            "Vgossip (Lgossip = 10, Tgossip = 30 min); the gossip length is "
            "clamped to the view size, mirroring the legacy sweep semantics."
        ),
        base="paper-default",
        axes=(
            SweepAxis(
                label="Vgossip",
                fields=("view_size", "gossip_length"),
                values=tuple(
                    (int(view), min(_BASE_GOSSIP_LENGTH, int(view)))
                    for view in PAPER_VIEW_SIZES
                ),
                display=tuple(str(int(view)) for view in PAPER_VIEW_SIZES),
            ),
        ),
    )
)

register_sweep(
    SweepSpec(
        name="ablation-push-threshold",
        description=(
            "Push-threshold ablation (Section 6.2 prose): the paper reports "
            "'almost same gains and same trade-off' for thresholds 0.1/0.5/0.7."
        ),
        base="paper-default",
        axes=(
            SweepAxis.single("push threshold", "push_threshold", PAPER_PUSH_THRESHOLDS),
        ),
    )
)

# Half the heavy-churn scenario's rates, derived (not copied) so retuning
# heavy-churn keeps the ablation honest about "half-heavy"; the ablation
# measures graceful degradation, not the stress ceiling.
_HEAVY_CHURN = get_scenario("heavy-churn").churn
_HALF_HEAVY_CHURN = ChurnProfile(
    content_failures_per_hour=_HEAVY_CHURN.content_failures_per_hour / 2,
    directory_failures_per_hour=_HEAVY_CHURN.directory_failures_per_hour / 2,
    locality_changes_per_hour=_HEAVY_CHURN.locality_changes_per_hour / 2,
)

register_sweep(
    SweepSpec(
        name="ablation-churn",
        description=(
            "Churn ablation (Section 5 mechanisms): the same workload without "
            "churn and under half the heavy-churn scenario's rates; the "
            "recovery machinery must keep the hit-ratio drop modest."
        ),
        base="paper-default",
        axes=(
            SweepAxis(
                label="churn",
                fields=("churn",),
                values=((ChurnProfile(),), (_HALF_HEAVY_CHURN,)),
                display=("none", "half-heavy"),
            ),
        ),
    )
)

#: partition lengths swept by ``resilience-partition-gossip``, as fractions
#: of the run (the fault always starts at 40% and reconciles on heal)
PARTITION_DURATION_FRACTIONS = (0.1, 0.2, 0.3)

register_sweep(
    SweepSpec(
        name="resilience-partition-gossip",
        description=(
            "Resilience grid: how long locality 0 stays partitioned x how "
            "often peers gossip (keepalives move in lockstep, as in Table "
            "2(b)).  Longer partitions depress availability inside the "
            "fault window; shorter gossip periods buy back recovery time "
            "after the heal — the trade-off the reconciliation round is "
            "designed to sidestep."
        ),
        base="partition-heal-reconcile",
        axes=(
            SweepAxis(
                label="partition",
                fields=("fault_model",),
                values=tuple(
                    (
                        ModelRef.of(
                            "locality-partition",
                            at_fraction=0.4,
                            duration_fraction=fraction,
                            localities=(0,),
                            reconcile_on_heal=True,
                        ),
                    )
                    for fraction in PARTITION_DURATION_FRACTIONS
                ),
                display=tuple(
                    f"{fraction:.0%} of run" for fraction in PARTITION_DURATION_FRACTIONS
                ),
            ),
            SweepAxis(
                label="Tgossip(s)",
                fields=("gossip_period_s", "keepalive_period_s"),
                values=((900.0, 900.0), (1800.0, 1800.0)),
            ),
        ),
    )
)

register_sweep(
    SweepSpec(
        name="fig6-hit-ratio-comparison",
        description=(
            "Figure 6: Flower-CDN and Squirrel process the exact same trace; "
            "a single-cell sweep over the squirrel-head-to-head scenario "
            "whose per-system metrics are directly comparable."
        ),
        base="squirrel-head-to-head",
        axes=(),
    )
)
