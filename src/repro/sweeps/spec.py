"""Declarative parameter-sweep specifications.

A :class:`SweepSpec` turns a *family* of runs — the Table 2 gossip-parameter
grids, the churn and push-threshold ablations, the Figure 6 head-to-head
comparison — into one frozen value object: a **base scenario** (a name from
the scenario library) plus an ordered tuple of :class:`SweepAxis` values,
each varying one or more :class:`~repro.scenarios.spec.ScenarioSpec` knobs
over a value grid.  Compiling a sweep takes the cartesian product of the
axes and derives one concrete ``ScenarioSpec`` per grid cell, together with
a deterministic per-cell seed:

* ``seed_policy="shared"`` gives every cell the same seed — common random
  numbers, the paper's own experimental design (same workload trace, one
  parameter varied), used by the Table 2 sweeps;
* ``seed_policy="derived"`` derives an independent 64-bit seed per cell from
  the sorted ``(field, value)`` assignments, so the seed depends only on
  *what* the cell pins, never on axis declaration order or grid position.

Sweeps are executed by :mod:`repro.sweeps.engine` (sequentially or across a
process pool, byte-identically) and the named registry of paper sweeps lives
in :mod:`repro.sweeps.library`.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, fields as dataclass_fields, is_dataclass, replace
from dataclasses import asdict
from typing import Dict, Optional, Tuple

from repro.scenarios.spec import ScenarioSpec
from repro.sim.rng import derive_seed

__all__ = [
    "KNOWN_SEED_POLICIES",
    "SweepAxis",
    "SweepCell",
    "SweepSpec",
    "CompiledSweep",
    "derive_cell_seed",
    "jsonify_value",
]

#: per-cell seed policies (see the module docstring)
KNOWN_SEED_POLICIES = ("shared", "derived")

#: every ScenarioSpec field name (axes may only set these)
_SPEC_FIELDS = frozenset(field.name for field in dataclass_fields(ScenarioSpec))
#: spec fields a sweep axis must not vary: identity/bookkeeping fields, and
#: the seed (cell seeds are governed by the sweep's seed policy instead)
_UNSWEEPABLE = frozenset({"name", "description", "seed", "tier"})


def jsonify_value(value: object) -> object:
    """A JSON-serialisable mirror of an axis value (dataclasses to dicts)."""
    if is_dataclass(value) and not isinstance(value, type):
        return {key: jsonify_value(item) for key, item in asdict(value).items()}
    if isinstance(value, (list, tuple)):
        return [jsonify_value(item) for item in value]
    return value


def _canonical(value: object) -> str:
    return json.dumps(jsonify_value(value), sort_keys=True)


def derive_cell_seed(
    base_seed: int, assignments: Tuple[Tuple[str, object], ...]
) -> int:
    """The ``"derived"`` policy: a 64-bit seed from the sorted assignments.

    Sorting by field name makes the seed a function of the *set* of
    ``(field, value)`` pins, so reordering the axes of a sweep (or reshaping
    the grid) never changes the seed any individual cell runs with.
    """
    key = ";".join(
        f"{field}={_canonical(value)}" for field, value in sorted(assignments)
    )
    return derive_seed(base_seed, f"sweep-cell:{key}")


@dataclass(frozen=True)
class SweepAxis:
    """One sweep dimension: a label, the spec field(s) it sets, and a grid.

    Most axes vary a single scalar knob (use :meth:`single`); an axis may
    also pin several fields *together* per grid point — e.g. Table 2(b)
    moves ``keepalive_period_s`` in lockstep with ``gossip_period_s`` — by
    listing multiple ``fields`` and giving one value tuple per point.
    """

    label: str
    fields: Tuple[str, ...]
    values: Tuple[Tuple[object, ...], ...]
    #: optional human-readable name per grid point (defaults to the first
    #: field's value rendered with ``str``) — used in tables and artifacts
    display: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("axis label must be non-empty")
        if not self.fields:
            raise ValueError(f"axis {self.label!r} must set at least one field")
        if len(set(self.fields)) != len(self.fields):
            raise ValueError(f"axis {self.label!r} repeats a field")
        for name in self.fields:
            if name not in _SPEC_FIELDS:
                raise ValueError(
                    f"axis {self.label!r} sets unknown ScenarioSpec field {name!r}"
                )
            if name in _UNSWEEPABLE:
                raise ValueError(
                    f"axis {self.label!r} must not vary the {name!r} field"
                )
        if not self.values:
            raise ValueError(f"axis {self.label!r} has an empty value grid")
        for point in self.values:
            if not isinstance(point, tuple) or len(point) != len(self.fields):
                raise ValueError(
                    f"axis {self.label!r}: every grid point must be a tuple of "
                    f"{len(self.fields)} value(s), got {point!r}"
                )
        if self.display and len(self.display) != len(self.values):
            raise ValueError(
                f"axis {self.label!r}: display needs one entry per grid point"
            )

    @classmethod
    def single(
        cls,
        label: str,
        field: str,
        values,
        display: Tuple[str, ...] = (),
    ) -> "SweepAxis":
        """An axis varying one scalar field over ``values``."""
        return cls(
            label=label,
            fields=(field,),
            values=tuple((value,) for value in values),
            display=tuple(display),
        )

    def __len__(self) -> int:
        return len(self.values)

    def display_value(self, index: int) -> str:
        if self.display:
            return self.display[index]
        value = self.values[index][0]
        return f"{value:g}" if isinstance(value, float) else str(value)

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "fields": list(self.fields),
            "values": [jsonify_value(point) for point in self.values],
            "display": [self.display_value(i) for i in range(len(self.values))],
        }


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: a fully derived scenario spec plus its seed."""

    #: grid coordinates, one index per axis (``()`` for a zero-axis sweep)
    coordinates: Tuple[int, ...]
    #: ``(field, value)`` pins in axis order (the cell's identity)
    assignments: Tuple[Tuple[str, object], ...]
    #: ``(axis label, display value)`` pairs in axis order (for rendering)
    labels: Tuple[Tuple[str, str], ...]
    spec: ScenarioSpec
    seed: int

    def assignment_dict(self) -> Dict[str, object]:
        """The pins as a JSON-serialisable mapping."""
        return {field: jsonify_value(value) for field, value in self.assignments}


@dataclass(frozen=True)
class CompiledSweep:
    """A sweep resolved against a concrete base spec: the executable grid."""

    sweep: "SweepSpec"
    base_name: str
    base_seed: int
    scale: float
    cells: Tuple[SweepCell, ...]

    def __len__(self) -> int:
        return len(self.cells)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative multi-run experiment over the scenario library."""

    name: str
    description: str = ""
    #: the library scenario every cell derives from
    base: str = "paper-default"
    axes: Tuple[SweepAxis, ...] = ()
    #: "shared" (common random numbers) or "derived" (independent per-cell
    #: seeds, stable across axis reordering)
    seed_policy: str = "shared"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sweep name must be non-empty")
        if not self.base:
            raise ValueError("sweep base scenario must be non-empty")
        if self.seed_policy not in KNOWN_SEED_POLICIES:
            raise ValueError(
                f"unknown seed policy {self.seed_policy!r}; "
                f"expected one of {KNOWN_SEED_POLICIES}"
            )
        seen: Dict[str, str] = {}
        for axis in self.axes:
            for field in axis.fields:
                if field in seen:
                    raise ValueError(
                        f"field {field!r} is set by both axis {seen[field]!r} "
                        f"and axis {axis.label!r}"
                    )
                seen[field] = axis.label

    # -- shape ---------------------------------------------------------------

    @property
    def grid_shape(self) -> Tuple[int, ...]:
        return tuple(len(axis) for axis in self.axes)

    @property
    def num_cells(self) -> int:
        cells = 1
        for axis in self.axes:
            cells *= len(axis)
        return cells

    # -- compilation ---------------------------------------------------------

    def compile(
        self,
        base_spec: Optional[ScenarioSpec] = None,
        seed: Optional[int] = None,
        scale: Optional[float] = None,
    ) -> CompiledSweep:
        """Resolve the base scenario and derive one spec + seed per cell.

        ``base_spec`` overrides the library lookup of :attr:`base` (used by
        the benchmark harness to run a registered sweep against the
        paper-scale variant of its base); ``scale`` applies the usual
        ratio-preserving :meth:`ScenarioSpec.scaled` shrink to the base
        *before* the axis values are pinned (axis values are absolute
        parameter values, exactly as Table 2 states them).
        """
        if base_spec is None:
            from repro.scenarios.library import get_scenario

            base_spec = get_scenario(self.base)
        base_name = base_spec.name
        if scale is not None and scale <= 0:
            raise ValueError("scale must be positive")
        if scale is not None and scale != 1.0:
            base_spec = base_spec.scaled(scale)
        base_seed = base_spec.seed if seed is None else seed

        cells = []
        ranges = [range(len(axis)) for axis in self.axes]
        for coordinates in itertools.product(*ranges):
            assignments: Tuple[Tuple[str, object], ...] = tuple(
                (field, value)
                for axis, index in zip(self.axes, coordinates)
                for field, value in zip(axis.fields, axis.values[index])
            )
            labels = tuple(
                (axis.label, axis.display_value(index))
                for axis, index in zip(self.axes, coordinates)
            )
            spec = replace(base_spec, **dict(assignments)) if assignments else base_spec
            if self.seed_policy == "shared":
                cell_seed = base_seed
            else:
                cell_seed = derive_cell_seed(base_seed, assignments)
            cells.append(
                SweepCell(
                    coordinates=tuple(coordinates),
                    assignments=assignments,
                    labels=labels,
                    spec=spec,
                    seed=cell_seed,
                )
            )
        return CompiledSweep(
            sweep=self,
            base_name=base_name,
            base_seed=base_seed,
            scale=1.0 if scale is None else scale,
            cells=tuple(cells),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "base": self.base,
            "seed_policy": self.seed_policy,
            "axes": [axis.to_dict() for axis in self.axes],
        }
