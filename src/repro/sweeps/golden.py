"""Golden-checked sweep grids.

Every registered sweep has a committed golden file
(``tests/goldens/sweeps/<name>.json``) holding its full
:meth:`~repro.sweeps.engine.SweepResult.to_dict` digest at the pinned golden
scale and seed (the same 0.25 / 42 the scenario goldens use).  Verification
re-runs the whole grid and compares **structure exactly** (cell count, axis
assignments, per-cell seeds) and **metrics with the scenario-golden
tolerances** — so a hot-path refactor is regression-checked across entire
parameter families, not just single runs.  Per-cell SHA-256 digests are
committed for byte-identity forensics but deliberately excluded from the
tolerance comparison (a within-tolerance drift must not fail the gate
twice).

Workflow::

    python -m repro.sweeps.golden                 # check all sweep goldens
    python -m repro.sweeps.golden --update        # refresh after an
                                                  # intentional change
    python -m repro.cli sweep run NAME --check-golden

``make goldens-sweeps`` / ``make check-goldens-sweeps`` wrap the two module
invocations.  See ``docs/sweeps.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.scenarios.golden import GOLDEN_SCALE, GOLDEN_SEED, _compare_metric_block
from repro.sweeps.engine import run_sweep
from repro.sweeps.library import sweep_names

__all__ = [
    "SWEEP_GOLDEN_SCALE",
    "default_sweep_golden_dir",
    "sweep_golden_path",
    "compute_sweep_digest",
    "write_sweep_golden",
    "load_sweep_golden",
    "compare_sweep_digests",
    "verify_sweep_golden",
    "main",
]

#: sweep goldens are pinned to the scenario-golden scale (small enough that a
#: whole grid re-runs in seconds, large enough to keep the paper's shape)
SWEEP_GOLDEN_SCALE = GOLDEN_SCALE


def default_sweep_golden_dir() -> Path:
    """``tests/goldens/sweeps`` of this checkout (REPRO_SWEEP_GOLDEN_DIR overrides)."""
    override = os.environ.get("REPRO_SWEEP_GOLDEN_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "tests" / "goldens" / "sweeps"


def sweep_golden_path(
    name: str, golden_dir: Optional[Path] = None, scale: float = SWEEP_GOLDEN_SCALE
) -> Path:
    """File a sweep golden lives in; non-default scales get their own file.

    The per-PR gate pins every grid at :data:`SWEEP_GOLDEN_SCALE`; the nightly
    job additionally pins selected grids at scale 1.0 (``<name>@1x.json``), so
    the two never overwrite each other.
    """
    directory = golden_dir if golden_dir is not None else default_sweep_golden_dir()
    if scale == SWEEP_GOLDEN_SCALE:
        return directory / f"{name}.json"
    return directory / f"{name}@{scale:g}x.json"


# -- producing digests --------------------------------------------------------


def compute_sweep_digest(
    name: str, jobs: int = 1, scale: float = SWEEP_GOLDEN_SCALE
) -> Dict[str, object]:
    """Run ``name`` at the pinned golden seed and ``scale``; the digest to commit."""
    result = run_sweep(name, jobs=jobs, seed=GOLDEN_SEED, scale=scale)
    return result.to_dict()


def write_sweep_golden(
    name: str,
    golden_dir: Optional[Path] = None,
    jobs: int = 1,
    scale: float = SWEEP_GOLDEN_SCALE,
) -> Path:
    path = sweep_golden_path(name, golden_dir, scale=scale)
    path.parent.mkdir(parents=True, exist_ok=True)
    digest = compute_sweep_digest(name, jobs=jobs, scale=scale)
    path.write_text(json.dumps(digest, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_sweep_golden(
    name: str, golden_dir: Optional[Path] = None, scale: float = SWEEP_GOLDEN_SCALE
) -> Dict[str, object]:
    path = sweep_golden_path(name, golden_dir, scale=scale)
    if not path.exists():
        scale_arg = "" if scale == SWEEP_GOLDEN_SCALE else f" --scale {scale:g}"
        raise FileNotFoundError(
            f"no golden committed for sweep {name!r} (expected {path}); "
            f"run `python -m repro.sweeps.golden --update{scale_arg} {name}`"
        )
    return json.loads(path.read_text(encoding="utf-8"))


# -- comparison ---------------------------------------------------------------


def compare_sweep_digests(
    expected: Dict[str, object], actual: Dict[str, object]
) -> List[str]:
    """Differences between two sweep digests (empty list = match).

    Grid structure — the sweep identity, axes, cell assignments, labels and
    seeds — must match exactly; metric blocks are compared with the
    per-metric tolerances of the scenario goldens; per-cell ``digest``
    hashes are informational and never compared here.
    """
    mismatches: List[str] = []
    for field in ("sweep", "base", "base_seed", "scale", "seed_policy", "axes"):
        if expected.get(field) != actual.get(field):
            mismatches.append(
                f"{field}: golden={expected.get(field)!r} actual={actual.get(field)!r}"
            )
    expected_cells = expected.get("cells", [])
    actual_cells = actual.get("cells", [])
    if len(expected_cells) != len(actual_cells):
        mismatches.append(
            f"cells: golden has {len(expected_cells)}, fresh run has {len(actual_cells)}"
        )
        return mismatches
    for index, (want, got) in enumerate(zip(expected_cells, actual_cells)):
        where = f"cell[{index}]"
        for field in ("coordinates", "assignments", "labels", "seed"):
            if want.get(field) != got.get(field):
                mismatches.append(
                    f"{where}.{field}: golden={want.get(field)!r} actual={got.get(field)!r}"
                )
        expected_systems = want.get("systems", {})
        actual_systems = got.get("systems", {})
        for system in sorted(set(expected_systems) | set(actual_systems)):
            if system not in actual_systems:
                mismatches.append(f"{where}.{system}: missing from the fresh run")
                continue
            if system not in expected_systems:
                mismatches.append(f"{where}.{system}: not present in the golden")
                continue
            mismatches.extend(
                _compare_metric_block(
                    expected_systems[system].get("metrics", {}),
                    actual_systems[system].get("metrics", {}),
                    prefix=f"{where}.{system}.metrics",
                    phase=False,
                )
            )
            expected_phases = expected_systems[system].get("phases", {})
            actual_phases = actual_systems[system].get("phases", {})
            for phase in sorted(set(expected_phases) | set(actual_phases)):
                mismatches.extend(
                    _compare_metric_block(
                        expected_phases.get(phase, {}),
                        actual_phases.get(phase, {}),
                        prefix=f"{where}.{system}.phases.{phase}",
                        phase=True,
                    )
                )
    return mismatches


def verify_sweep_golden(
    name: str,
    golden_dir: Optional[Path] = None,
    jobs: int = 1,
    scale: float = SWEEP_GOLDEN_SCALE,
) -> List[str]:
    """Re-run the whole grid at ``scale`` and diff against the committed file."""
    expected = load_sweep_golden(name, golden_dir, scale=scale)
    actual = compute_sweep_digest(name, jobs=jobs, scale=scale)
    return compare_sweep_digests(expected, actual)


# -- command line (used by `make goldens-sweeps` / CI) ------------------------


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro.sweeps.golden",
        description="check or regenerate the committed sweep-golden files",
    )
    parser.add_argument("names", nargs="*",
                        help="sweep names (default: the whole registry)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the goldens instead of checking them")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes per sweep grid (default 1)")
    parser.add_argument("--scale", type=float, default=SWEEP_GOLDEN_SCALE,
                        help="scenario scale to pin the grid at (default "
                             f"{SWEEP_GOLDEN_SCALE:g}; the nightly paper-scale "
                             "job checks selected grids at 1.0, stored as "
                             "<name>@1x.json)")
    parser.add_argument("--golden-dir", type=Path, default=None)
    args = parser.parse_args(argv)

    names = list(args.names) if args.names else sweep_names()
    unknown = [name for name in names if name not in sweep_names()]
    if unknown:
        print(f"error: unknown sweep(s): {', '.join(unknown)}; "
              f"known sweeps: {', '.join(sweep_names())}", file=sys.stderr)
        return 2
    if args.jobs <= 0:
        print("error: --jobs must be positive", file=sys.stderr)
        return 2
    if args.scale <= 0:
        print("error: --scale must be positive", file=sys.stderr)
        return 2
    failures = 0
    for name in names:
        if args.update:
            path = write_sweep_golden(
                name, args.golden_dir, jobs=args.jobs, scale=args.scale
            )
            print(f"updated {path}", file=out)
            continue
        try:
            mismatches = verify_sweep_golden(
                name, args.golden_dir, jobs=args.jobs, scale=args.scale
            )
        except FileNotFoundError as error:
            print(f"FAIL {name}: {error}", file=out)
            failures += 1
            continue
        if mismatches:
            failures += 1
            print(f"FAIL {name}:", file=out)
            for mismatch in mismatches:
                print(f"  {mismatch}", file=out)
        else:
            print(f"ok   {name}", file=out)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
