"""Performance benchmark suite and tracked baselines.

``repro perf`` (see :mod:`repro.perf.suite`) runs microbenchmarks of the hot
layers (event core, latency cache, Zipf samplers) plus end-to-end scenario
benchmarks, and emits ``BENCH_core.json``.  The committed baseline lives at
``benchmarks/perf/BENCH_core.json``; CI re-runs the suite and fails when
events/sec regresses more than the configured threshold against it.  See
``docs/performance.md`` for the workflow.
"""

from repro.perf.suite import (  # noqa: F401
    BASELINE_PATH_ENV,
    DEFAULT_SCENARIOS,
    PAPER_SCALE_SCENARIO,
    REGRESSION_THRESHOLD,
    bench_paper_scale,
    bench_paper_scale_sharded,
    compare_to_baseline,
    default_baseline_path,
    run_memory_suite,
    run_suite,
)
