"""The perf-benchmark suite behind ``repro perf``.

Two tiers of benchmarks feed one JSON document (``BENCH_core.json``):

* **micro** — tight loops over the hot primitives: event scheduling/dispatch,
  event cancellation + heap compaction, the topology latency cache, and both
  Zipf sampling strategies.  These isolate layer-level regressions.
* **scenarios** — named library scenarios run end to end.  Two phases are
  timed separately per scenario:

  - ``events_per_s`` / ``queries_per_s``: throughput of the *event-dispatch
    phase* (bulk-scheduling the resolved trace + running the simulator to the
    horizon) — the standard events/sec figure of a discrete-event engine;
  - ``wall_s``: the complete scenario execution (environment + trace
    construction + dispatch + metric finalisation), the number a user waits
    for.

All numbers are best-of-``repeats`` (the standard way to suppress scheduler
noise in wall-clock benchmarks).  ``python -m repro.cli perf --check``
compares a fresh run against the committed baseline and fails on events/sec
regressions beyond :data:`REGRESSION_THRESHOLD`; to compensate for machine
speed differences (laptop vs CI runner) the comparison is performed on
*calibrated* ratios — scenario events/sec divided by the event-core
microbenchmark events/sec of the same run — so only relative slowdowns of
the simulation code trip the gate, not a slower machine.
"""

from __future__ import annotations

import json
import os
import platform
import time
from functools import partial
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments.driver import ExperimentRunner
from repro.network.topology import Topology, TopologyConfig
from repro.scenarios.library import get_scenario
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.zipf import ZipfSampler

#: schema version of BENCH_core.json
SCHEMA_VERSION = 1
#: scenarios benchmarked by default (paper-default is the headline)
DEFAULT_SCENARIOS = ("paper-default", "flash-crowd")
#: relative events/sec regression that fails the CI gate
REGRESSION_THRESHOLD = 0.20
#: environment override for the committed baseline location
BASELINE_PATH_ENV = "REPRO_PERF_BASELINE"


def default_baseline_path() -> Path:
    """``benchmarks/perf/BENCH_core.json`` of this checkout (env-overridable)."""
    override = os.environ.get(BASELINE_PATH_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "benchmarks" / "perf" / "BENCH_core.json"


# -- micro benchmarks ---------------------------------------------------------


def bench_event_core(num_events: int = 100_000, repeats: int = 3) -> Dict[str, float]:
    """Schedule and dispatch ``num_events`` trivial events; events/sec."""
    best = 0.0
    for _ in range(repeats):
        sim = Simulator(seed=1)
        callback = _noop
        start = time.perf_counter()
        sim.schedule_batch(((float(i), callback) for i in range(num_events)))
        sim.run()
        elapsed = time.perf_counter() - start
        best = max(best, num_events / elapsed)
    return {"events_per_s": best, "num_events": num_events}


def _noop() -> None:
    return None


def bench_event_cancellation(num_events: int = 50_000, repeats: int = 3) -> Dict[str, float]:
    """Push/cancel churn exercising lazy deletion and heap compaction."""
    best = 0.0
    for _ in range(repeats):
        sim = Simulator(seed=1)
        queue = sim._queue
        start = time.perf_counter()
        handles = [queue.push(float(i), _noop) for i in range(num_events)]
        for handle in handles[:: 2]:
            queue.cancel(handle)
        while queue.pop() is not None:
            pass
        elapsed = time.perf_counter() - start
        best = max(best, num_events / elapsed)
    return {"ops_per_s": best, "num_events": num_events}


def bench_periodic_rescheduling(
    periods: int = 50_000, repeats: int = 3
) -> Dict[str, float]:
    """call_every fast-path rescheduling throughput (fires/sec)."""
    best = 0.0
    for _ in range(repeats):
        sim = Simulator(seed=1)
        sim.call_every(1.0, _noop)
        start = time.perf_counter()
        sim.run(until=float(periods))
        elapsed = time.perf_counter() - start
        best = max(best, periods / elapsed)
    return {"fires_per_s": best, "periods": periods}


def bench_latency_cache(
    num_hosts: int = 500, num_queries: int = 200_000, repeats: int = 3
) -> Dict[str, float]:
    """Repeated symmetric pair queries against the topology latency memo."""
    topology = Topology(
        TopologyConfig(num_hosts=num_hosts, num_localities=3), RandomStreams(7)
    )
    # A small working set of pairs, queried round-robin: the cache-hit regime
    # the simulation lives in.
    pairs = [((i * 13) % num_hosts, (i * 31 + 7) % num_hosts) for i in range(1024)]
    best = 0.0
    for _ in range(repeats):
        latency_ms = topology.latency_ms
        start = time.perf_counter()
        index = 0
        for _ in range(num_queries):
            a, b = pairs[index]
            latency_ms(a, b)
            index = (index + 1) & 1023
        elapsed = time.perf_counter() - start
        best = max(best, num_queries / elapsed)
    info = topology.latency_cache_info()
    return {
        "queries_per_s": best,
        "num_queries": num_queries,
        "cache_hits": info["hits"],
        "cache_misses": info["misses"],
    }


def bench_zipf(
    population: int = 10_000, draws: int = 200_000, repeats: int = 3
) -> Dict[str, float]:
    """Draws/sec of both sampling strategies over a large rank population."""
    import random as _random

    results: Dict[str, float] = {"population": population, "draws": draws}
    for method in ("alias", "cdf"):
        sampler = ZipfSampler(population, 0.8, method=method)
        best = 0.0
        for _ in range(repeats):
            rng = _random.Random(3)
            start = time.perf_counter()
            sampler.sample_many(rng, draws)
            elapsed = time.perf_counter() - start
            best = max(best, draws / elapsed)
        results[f"{method}_draws_per_s"] = best
    return results


# -- scenario benchmarks ------------------------------------------------------


def bench_scenario(
    name: str, scale: float = 1.0, repeats: int = 3
) -> Dict[str, float]:
    """End-to-end benchmark of one library scenario (Flower-CDN system).

    The event-dispatch phase (bulk trace scheduling + simulator run) is timed
    separately from the full execution; events/sec and queries/sec are
    defined over the dispatch phase, ``wall_s`` over the whole thing.
    """
    spec = get_scenario(name)
    if scale != 1.0:
        spec = spec.scaled(scale)
    best_events_per_s = 0.0
    best_queries_per_s = 0.0
    best_wall = float("inf")
    events_fired = 0
    num_queries = 0
    for _ in range(repeats):
        runner = ExperimentRunner(spec.to_setup())
        total_start = time.perf_counter()
        runner.resolved_queries()  # environment + trace construction
        sim, system = runner.build_flower()
        handle = system.handle_query
        dispatch_start = time.perf_counter()
        sim.schedule_batch(
            ((query.time, partial(handle, query)) for query in runner.resolved_queries()),
            label="query",
        )
        sim.run(until=spec.duration_s)
        dispatch_elapsed = time.perf_counter() - dispatch_start
        # Metric finalisation is part of the full wall clock.
        system.metrics.hit_ratio
        system.bandwidth.average_bps_per_peer(spec.duration_s)
        total_elapsed = time.perf_counter() - total_start
        events_fired = sim.events_fired
        num_queries = system.metrics.num_queries
        best_events_per_s = max(best_events_per_s, events_fired / dispatch_elapsed)
        best_queries_per_s = max(best_queries_per_s, num_queries / dispatch_elapsed)
        best_wall = min(best_wall, total_elapsed)
    return {
        "events_per_s": best_events_per_s,
        "queries_per_s": best_queries_per_s,
        "wall_s": best_wall,
        "events_fired": events_fired,
        "num_queries": num_queries,
        "scale": scale,
    }


# -- the suite ----------------------------------------------------------------


def run_suite(
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    scale: float = 1.0,
    repeats: int = 3,
    quick: bool = False,
) -> Dict[str, object]:
    """Run the whole suite and return the ``BENCH_core.json`` document.

    ``quick`` shrinks every workload (used by the pytest smoke tests and the
    CI smoke job) — the numbers stay comparable in *shape*, not magnitude.
    """
    if quick:
        micro = {
            "event_core": bench_event_core(10_000, repeats=1),
            "event_cancellation": bench_event_cancellation(5_000, repeats=1),
            "periodic_rescheduling": bench_periodic_rescheduling(5_000, repeats=1),
            "latency_cache": bench_latency_cache(120, 20_000, repeats=1),
            "zipf": bench_zipf(1_000, 20_000, repeats=1),
        }
        repeats = 1
        scale = min(scale, 0.25)
    else:
        micro = {
            "event_core": bench_event_core(repeats=repeats),
            "event_cancellation": bench_event_cancellation(repeats=repeats),
            "periodic_rescheduling": bench_periodic_rescheduling(repeats=repeats),
            "latency_cache": bench_latency_cache(repeats=repeats),
            "zipf": bench_zipf(repeats=repeats),
        }
    scenario_results = {
        name: bench_scenario(name, scale=scale, repeats=repeats) for name in scenarios
    }
    return {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "repeats": repeats,
        "quick": quick,
        "micro": micro,
        "scenarios": scenario_results,
    }


# -- baseline comparison ------------------------------------------------------


def compare_to_baseline(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = REGRESSION_THRESHOLD,
) -> List[str]:
    """Regression check of ``fresh`` against ``baseline``; empty list = pass.

    Scenario events/sec are compared as *calibrated ratios* (scenario
    events/sec ÷ event-core micro events/sec of the same document), so a
    uniformly slower machine does not read as a regression — only simulation
    code that got slower relative to the interpreter does.
    """
    failures: List[str] = []
    fresh_core = _core_events_per_s(fresh)
    base_core = _core_events_per_s(baseline)
    if not fresh_core or not base_core:
        return ["baseline or fresh run lacks the event_core microbenchmark"]
    fresh_scenarios = fresh.get("scenarios", {})
    for name, base_result in baseline.get("scenarios", {}).items():
        fresh_result = fresh_scenarios.get(name)
        if fresh_result is None:
            failures.append(f"{name}: missing from the fresh run")
            continue
        base_ratio = float(base_result["events_per_s"]) / base_core
        fresh_ratio = float(fresh_result["events_per_s"]) / fresh_core
        if fresh_ratio < base_ratio * (1.0 - threshold):
            failures.append(
                f"{name}: calibrated events/sec regressed "
                f"{(1.0 - fresh_ratio / base_ratio) * 100.0:.1f}% "
                f"(baseline ratio {base_ratio:.4f}, fresh ratio {fresh_ratio:.4f}, "
                f"threshold {threshold * 100.0:.0f}%)"
            )
    return failures


def _core_events_per_s(document: Dict[str, object]) -> Optional[float]:
    try:
        return float(document["micro"]["event_core"]["events_per_s"])  # type: ignore[index]
    except (KeyError, TypeError, ValueError):
        return None


def load_baseline(path: Optional[Path] = None) -> Dict[str, object]:
    baseline_path = path if path is not None else default_baseline_path()
    if not baseline_path.exists():
        raise FileNotFoundError(
            f"no committed perf baseline at {baseline_path}; run "
            f"`python -m repro.cli perf --update-baseline` to create it"
        )
    return json.loads(baseline_path.read_text(encoding="utf-8"))


def write_document(document: Dict[str, object], path: Path) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
