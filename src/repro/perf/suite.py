"""The perf-benchmark suite behind ``repro perf``.

Two tiers of benchmarks feed one JSON document (``BENCH_core.json``):

* **micro** — tight loops over the hot primitives: event scheduling/dispatch,
  event cancellation + heap compaction, the topology latency cache, and both
  Zipf sampling strategies.  These isolate layer-level regressions.
* **scenarios** — named library scenarios run end to end.  Two phases are
  timed separately per scenario:

  - ``events_per_s`` / ``queries_per_s``: throughput of the *event-dispatch
    phase* (bulk-scheduling the resolved trace + running the simulator to the
    horizon) — the standard events/sec figure of a discrete-event engine;
  - ``wall_s``: the complete scenario execution (environment + trace
    construction + dispatch + metric finalisation), the number a user waits
    for.

All numbers are best-of-``repeats`` (the standard way to suppress scheduler
noise in wall-clock benchmarks).  ``python -m repro.cli perf --check``
compares a fresh run against the committed baseline and fails on events/sec
regressions beyond :data:`REGRESSION_THRESHOLD`; to compensate for machine
speed differences (laptop vs CI runner) the comparison is performed on
*calibrated* ratios — scenario events/sec divided by the event-core
microbenchmark events/sec of the same run — so only relative slowdowns of
the simulation code trip the gate, not a slower machine.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.metrics.collectors import MetricsCollector, QueryOutcome, QueryRecord
from repro.network.topology import Topology, TopologyConfig
from repro.scenarios.library import get_scenario
from repro.session import Session
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.zipf import ZipfSampler

#: schema version of BENCH_core.json
SCHEMA_VERSION = 2
#: scenarios benchmarked by default (paper-default is the headline)
DEFAULT_SCENARIOS = ("paper-default", "flash-crowd")
#: the scenario whose Squirrel system the baseline-replay benchmark times
SQUIRREL_SCENARIO = "squirrel-head-to-head"
#: the scenario the --paper-scale benchmark runs
PAPER_SCALE_SCENARIO = "paper-default-full-scale"
#: relative events/sec regression that fails the CI gate
REGRESSION_THRESHOLD = 0.20
#: environment override for the committed baseline location
BASELINE_PATH_ENV = "REPRO_PERF_BASELINE"


def _peak_rss_mb() -> float:
    """Peak resident set size of this process in MB (0.0 when unavailable).

    ``ru_maxrss`` is kilobytes on Linux but **bytes** on macOS.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def default_baseline_path() -> Path:
    """``benchmarks/perf/BENCH_core.json`` of this checkout (env-overridable)."""
    override = os.environ.get(BASELINE_PATH_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "benchmarks" / "perf" / "BENCH_core.json"


# -- micro benchmarks ---------------------------------------------------------


def bench_event_core(num_events: int = 100_000, repeats: int = 3) -> Dict[str, float]:
    """Schedule and dispatch ``num_events`` trivial events; events/sec."""
    best = 0.0
    for _ in range(repeats):
        sim = Simulator(seed=1)
        callback = _noop
        start = time.perf_counter()
        sim.schedule_batch(((float(i), callback) for i in range(num_events)))
        sim.run()
        elapsed = time.perf_counter() - start
        best = max(best, num_events / elapsed)
    return {"events_per_s": best, "num_events": num_events}


def _noop() -> None:
    return None


def bench_event_cancellation(num_events: int = 50_000, repeats: int = 3) -> Dict[str, float]:
    """Push/cancel churn exercising lazy deletion and heap compaction."""
    best = 0.0
    for _ in range(repeats):
        sim = Simulator(seed=1)
        queue = sim._queue
        start = time.perf_counter()
        handles = [queue.push(float(i), _noop) for i in range(num_events)]
        for handle in handles[:: 2]:
            queue.cancel(handle)
        while queue.pop() is not None:
            pass
        elapsed = time.perf_counter() - start
        best = max(best, num_events / elapsed)
    return {"ops_per_s": best, "num_events": num_events}


def bench_periodic_rescheduling(
    periods: int = 50_000, repeats: int = 3
) -> Dict[str, float]:
    """call_every fast-path rescheduling throughput (fires/sec)."""
    best = 0.0
    for _ in range(repeats):
        sim = Simulator(seed=1)
        sim.call_every(1.0, _noop)
        start = time.perf_counter()
        sim.run(until=float(periods))
        elapsed = time.perf_counter() - start
        best = max(best, periods / elapsed)
    return {"fires_per_s": best, "periods": periods}


def bench_latency_cache(
    num_hosts: int = 500, num_queries: int = 200_000, repeats: int = 3
) -> Dict[str, float]:
    """Repeated symmetric pair queries against the topology latency memo."""
    topology = Topology(
        TopologyConfig(num_hosts=num_hosts, num_localities=3), RandomStreams(7)
    )
    # A small working set of pairs, queried round-robin: the cache-hit regime
    # the simulation lives in.
    pairs = [((i * 13) % num_hosts, (i * 31 + 7) % num_hosts) for i in range(1024)]
    best = 0.0
    for _ in range(repeats):
        latency_ms = topology.latency_ms
        start = time.perf_counter()
        index = 0
        for _ in range(num_queries):
            a, b = pairs[index]
            latency_ms(a, b)
            index = (index + 1) & 1023
        elapsed = time.perf_counter() - start
        best = max(best, num_queries / elapsed)
    info = topology.latency_cache_info()
    return {
        "queries_per_s": best,
        "num_queries": num_queries,
        "cache_hits": info["hits"],
        "cache_misses": info["misses"],
    }


def bench_zipf(
    population: int = 10_000, draws: int = 200_000, repeats: int = 3
) -> Dict[str, float]:
    """Draws/sec of both sampling strategies over a large rank population."""
    import random as _random

    results: Dict[str, float] = {"population": population, "draws": draws}
    for method in ("alias", "cdf"):
        sampler = ZipfSampler(population, 0.8, method=method)
        best = 0.0
        for _ in range(repeats):
            rng = _random.Random(3)
            start = time.perf_counter()
            sampler.sample_many(rng, draws)
            elapsed = time.perf_counter() - start
            best = max(best, draws / elapsed)
        results[f"{method}_draws_per_s"] = best
    return results


# -- scenario benchmarks ------------------------------------------------------


def bench_scenario(
    name: str, scale: float = 1.0, repeats: int = 3
) -> Dict[str, float]:
    """End-to-end benchmark of one library scenario (Flower-CDN system).

    The event-dispatch phase (bulk trace scheduling + simulator run) is timed
    separately from the full execution; events/sec and queries/sec are
    defined over the dispatch phase, ``wall_s`` over the whole thing.
    """
    spec = get_scenario(name)
    if scale != 1.0:
        spec = spec.scaled(scale)
    best_events_per_s = 0.0
    best_queries_per_s = 0.0
    best_wall = float("inf")
    events_fired = 0
    num_queries = 0
    for _ in range(repeats):
        session = Session.from_spec(spec)
        total_start = time.perf_counter()
        trace = session.resolved_trace()  # environment + trace construction
        sim, system = session.build_flower()
        # Attach the spec's churn/fault models through the same Session API
        # run_system uses, so program scenarios benchmark what they execute.
        injectors = session.attach_models(system)
        for injector in injectors:
            injector.start()
        dispatch_start = time.perf_counter()
        sim.schedule_trace(trace.times, trace.dispatcher(system.handle_query), label="query")
        sim.run(until=spec.duration_s)
        dispatch_elapsed = time.perf_counter() - dispatch_start
        for injector in reversed(injectors):
            injector.stop()
        # Metric finalisation is part of the full wall clock.
        system.metrics.hit_ratio
        system.bandwidth.average_bps_per_peer(spec.duration_s)
        total_elapsed = time.perf_counter() - total_start
        events_fired = sim.events_fired
        num_queries = system.metrics.num_queries
        best_events_per_s = max(best_events_per_s, events_fired / dispatch_elapsed)
        best_queries_per_s = max(best_queries_per_s, num_queries / dispatch_elapsed)
        best_wall = min(best_wall, total_elapsed)
    return {
        "events_per_s": best_events_per_s,
        "queries_per_s": best_queries_per_s,
        "wall_s": best_wall,
        "events_fired": events_fired,
        "num_queries": num_queries,
        "scale": scale,
    }


def bench_squirrel(
    name: str = SQUIRREL_SCENARIO, scale: float = 1.0, repeats: int = 3
) -> Dict[str, float]:
    """Squirrel-baseline dispatch throughput over the shared trace replay.

    The baseline replays the exact same resolved trace as the Flower system
    (bulk `schedule_trace` + array-column dispatcher), so its events/sec are
    directly comparable — and regressions in the Chord routing or directory
    path trip the same calibrated gate as the Flower scenarios.
    """
    spec = get_scenario(name)
    if scale != 1.0:
        spec = spec.scaled(scale)
    best_events_per_s = 0.0
    best_queries_per_s = 0.0
    best_wall = float("inf")
    events_fired = 0
    num_queries = 0
    for _ in range(repeats):
        session = Session.from_spec(spec)
        total_start = time.perf_counter()
        trace = session.resolved_trace()
        sim, system = session.experiment.build_squirrel()
        dispatch_start = time.perf_counter()
        sim.schedule_trace(trace.times, trace.dispatcher(system.handle_query), label="query")
        sim.run(until=spec.duration_s)
        dispatch_elapsed = time.perf_counter() - dispatch_start
        system.metrics.hit_ratio
        total_elapsed = time.perf_counter() - total_start
        events_fired = sim.events_fired
        num_queries = system.metrics.num_queries
        best_events_per_s = max(best_events_per_s, events_fired / dispatch_elapsed)
        best_queries_per_s = max(best_queries_per_s, num_queries / dispatch_elapsed)
        best_wall = min(best_wall, total_elapsed)
    return {
        "events_per_s": best_events_per_s,
        "queries_per_s": best_queries_per_s,
        "wall_s": best_wall,
        "events_fired": events_fired,
        "num_queries": num_queries,
        "scale": scale,
    }


def bench_paper_scale(
    name: str = PAPER_SCALE_SCENARIO, isolate: bool = False, kernel: bool = False
) -> Dict[str, float]:
    """One end-to-end paper-scale run with wall-clock and memory accounting.

    Runs the scenario exactly as ``repro scenarios run`` would (the spec pins
    the calendar backend and compact metrics), split into the trace/dispatch
    phases, and reports peak RSS.  A single repetition: at minutes per run,
    best-of-N is not worth the wall clock — the nightly job tracks the trend
    instead.

    ``kernel=True`` runs the Flower system on the columnar protocol kernel
    (byte-identical metrics, different hot-path implementation), so the
    document records both backends' throughput side by side.

    ``isolate=True`` runs the benchmark in a fresh child process so
    ``peak_rss_mb`` measures *this run* rather than the process-lifetime
    maximum (``ru_maxrss`` is monotone, so an in-process measurement would
    include whatever suite sections ran earlier).  Falls back to the inline
    run if the child cannot be spawned.
    """
    if isolate:
        src_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        code = (
            "import json\n"
            "from repro.perf.suite import bench_paper_scale\n"
            f"print(json.dumps(bench_paper_scale({name!r}, kernel={kernel!r})))\n"
        )
        try:
            child = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            return json.loads(child.stdout.strip().splitlines()[-1])
        except (OSError, subprocess.CalledProcessError, ValueError, IndexError):
            pass  # fall through to the inline run
    spec = get_scenario(name)
    session = Session.from_name(name, kernel=kernel)
    total_start = time.perf_counter()
    trace = session.resolved_trace()
    trace_elapsed = time.perf_counter() - total_start
    sim, system = session.build_flower()
    dispatch_start = time.perf_counter()
    sim.schedule_trace(trace.times, trace.dispatcher(system.handle_query), label="query")
    sim.run(until=spec.duration_s)
    dispatch_elapsed = time.perf_counter() - dispatch_start
    hit_ratio = system.metrics.hit_ratio
    system.bandwidth.average_bps_per_peer(spec.duration_s)
    total_elapsed = time.perf_counter() - total_start
    info = session.experiment.topology.latency_cache_info()
    return {
        "scenario": name,
        "kernel": kernel,
        "events_per_s": sim.events_fired / dispatch_elapsed,
        "queries_per_s": system.metrics.num_queries / dispatch_elapsed,
        "trace_s": trace_elapsed,
        "dispatch_s": dispatch_elapsed,
        "wall_s": total_elapsed,
        "events_fired": sim.events_fired,
        "num_queries": system.metrics.num_queries,
        "num_content_peers": system.num_content_peers,
        "hit_ratio": hit_ratio,
        "peak_rss_mb": _peak_rss_mb(),
        "trace_nbytes": trace.nbytes,
        "latency_cache_backend": info["backend"],
        "latency_cache_size": info["size"],
    }


def bench_paper_scale_sharded(
    name: str = PAPER_SCALE_SCENARIO, shards: int = 8, isolate: bool = False
) -> Dict[str, float]:
    """One end-to-end paper-scale run through the space-parallel shard engine.

    Reports two throughput numbers side by side:

    * ``events_per_s_wall`` — total events over the honest wall clock of the
      whole sharded run (fan-out, per-shard setup, windowed dispatch, merge)
      on *this* machine.  On a single-core container the shards time-slice
      one CPU, so this is roughly the single-process rate minus overhead.
    * ``events_per_s_critical_path`` — total events over the slowest shard's
      dispatch time (:attr:`ShardRunStats.critical_path_s`).  This is the
      lockstep-parallel bound: the rate an ``N``-core machine approaches
      when every shard engine runs on its own core.

    ``cpu_affinity`` records how many CPUs the process was actually allowed
    to use so readers can tell which of the two numbers the hardware could
    realise.  A single repetition, same as :func:`bench_paper_scale`.
    """
    if isolate:
        src_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        code = (
            "import json\n"
            "from repro.perf.suite import bench_paper_scale_sharded\n"
            f"print(json.dumps(bench_paper_scale_sharded({name!r}, shards={shards!r})))\n"
        )
        try:
            child = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            return json.loads(child.stdout.strip().splitlines()[-1])
        except (OSError, subprocess.CalledProcessError, ValueError, IndexError):
            pass  # fall through to the inline run
    from repro.scenarios.parallel import default_jobs

    session = Session.from_name(name, shards=shards)
    total_start = time.perf_counter()
    run = session.run_system("flower")
    total_elapsed = time.perf_counter() - total_start
    stats = session.last_shard_stats
    critical_path_s = stats.critical_path_s
    return {
        "scenario": name,
        "shards": shards,
        "cpu_affinity": default_jobs(),
        "events_per_s_wall": run.events_fired / total_elapsed,
        "events_per_s_critical_path": run.events_fired / critical_path_s,
        "wall_s": total_elapsed,
        "pool_wall_s": stats.wall_s,
        "critical_path_s": critical_path_s,
        "setup_s_max": max(stats.setup_s_per_shard),
        "dispatch_s_total": sum(stats.dispatch_s_per_shard),
        "lookahead_s": stats.lookahead_s,
        "num_windows": stats.num_windows,
        "events_fired": run.events_fired,
        "num_queries": run.num_queries,
        "hit_ratio": run.hit_ratio,
        "peak_rss_mb": _peak_rss_mb(),
    }


# -- memory benchmarks --------------------------------------------------------


def _traced_peak(fn) -> int:
    """Peak tracemalloc bytes allocated while running ``fn``."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def bench_memory_event_queue(num_events: int = 50_000) -> Dict[str, float]:
    """Peak bytes per scheduled event: retained handles vs pooled trace feed."""
    results: Dict[str, float] = {"num_events": num_events}
    times = [float(i) for i in range(num_events)]
    for backend in ("heap", "calendar"):
        sim = Simulator(seed=1, queue_backend=backend)
        peak = _traced_peak(
            lambda sim=sim: (sim.schedule_batch((t, _noop) for t in times), sim.run())
        )
        results[f"{backend}_batch_peak_bytes_per_event"] = peak / num_events
        sim = Simulator(seed=1, queue_backend=backend)
        peak = _traced_peak(
            lambda sim=sim: (sim.schedule_trace(times, _noop), sim.run())
        )
        results[f"{backend}_trace_peak_bytes_per_event"] = peak / num_events
    return results


def bench_memory_latency_cache(num_hosts: int = 500) -> Dict[str, float]:
    """Bytes held by the latency memo after touching every pair once."""
    results: Dict[str, float] = {"num_hosts": num_hosts}
    for label, cache_size in (
        ("dense", Topology.DEFAULT_LATENCY_CACHE_SIZE),
        ("lru", num_hosts),  # force the sparse backend with a small bound
    ):
        topology = Topology(
            TopologyConfig(num_hosts=num_hosts, num_localities=3),
            RandomStreams(7),
            latency_cache_size=cache_size,
        )
        for a in range(0, num_hosts, 7):
            for b in range(a + 1, num_hosts, 11):
                topology.latency_ms(a, b)
        info = topology.latency_cache_info()
        results[f"{label}_cache_nbytes"] = topology.latency_cache_nbytes()
        results[f"{label}_cache_entries"] = info["size"]
    return results


def bench_memory_metrics(num_records: int = 100_000) -> Dict[str, float]:
    """Peak bytes per recorded query: retained records vs compact reservoirs.

    Records are constructed *inside* the measured region — exactly as
    ``handle_query`` does — so the retained mode pays for the resident
    QueryRecord objects while the compact mode drops them at each fold.
    """
    results: Dict[str, float] = {"num_records": num_records}
    hit, miss = QueryOutcome.LOCAL_OVERLAY_HIT, QueryOutcome.SERVER_MISS
    for label, retain in (("retained", True), ("compact", False)):
        collector = MetricsCollector(window_s=3600.0, retain_records=retain)

        def fill(collector=collector):
            record = collector.record
            for i in range(num_records):
                record(
                    QueryRecord(
                        query_id=i,
                        time=float(i),
                        website="site-000.example.org",
                        locality=i % 3,
                        outcome=hit if i % 3 else miss,
                        lookup_latency_ms=float(i % 400),
                        transfer_distance_ms=float(i % 200),
                    )
                )
            collector.hit_ratio  # force the final fold

        results[f"{label}_peak_bytes_per_record"] = _traced_peak(fill) / num_records
    return results


def run_memory_suite(quick: bool = False) -> Dict[str, Dict[str, float]]:
    """The ``memory`` section of BENCH_core.json (tracemalloc-based, untimed)."""
    if quick:
        return {
            "event_queue": bench_memory_event_queue(5_000),
            "latency_cache": bench_memory_latency_cache(120),
            "metrics": bench_memory_metrics(10_000),
        }
    return {
        "event_queue": bench_memory_event_queue(),
        "latency_cache": bench_memory_latency_cache(),
        "metrics": bench_memory_metrics(),
    }


# -- the suite ----------------------------------------------------------------


def run_suite(
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    scale: float = 1.0,
    repeats: int = 3,
    quick: bool = False,
    memory: bool = True,
    paper_scale: bool = False,
    shards: int = 0,
) -> Dict[str, object]:
    """Run the whole suite and return the ``BENCH_core.json`` document.

    ``quick`` shrinks every workload (used by the pytest smoke tests and the
    CI smoke job) — the numbers stay comparable in *shape*, not magnitude.
    ``memory`` adds the tracemalloc section; ``paper_scale`` additionally runs
    the full Table 1 scenario end to end (minutes — the nightly job's tier).
    ``shards >= 2`` (with ``paper_scale``) additionally runs the same scenario
    through the space-parallel shard engine and records the
    ``paper_scale_sharded`` section.
    """
    if quick:
        micro = {
            # event_core calibrates the regression gate's ratios: it and the
            # scenario benches below keep the caller's best-of-N (default 3)
            # even in quick mode, or single-run noise trips the 20% gate.
            # An explicit --repeats is honoured.
            "event_core": bench_event_core(10_000, repeats=repeats),
            "event_cancellation": bench_event_cancellation(5_000, repeats=1),
            "periodic_rescheduling": bench_periodic_rescheduling(5_000, repeats=1),
            "latency_cache": bench_latency_cache(120, 20_000, repeats=1),
            "zipf": bench_zipf(1_000, 20_000, repeats=1),
        }
        scale = min(scale, 0.25)
    else:
        micro = {
            "event_core": bench_event_core(repeats=repeats),
            "event_cancellation": bench_event_cancellation(repeats=repeats),
            "periodic_rescheduling": bench_periodic_rescheduling(repeats=repeats),
            "latency_cache": bench_latency_cache(repeats=repeats),
            "zipf": bench_zipf(repeats=repeats),
        }
    scenario_results = {
        name: bench_scenario(name, scale=scale, repeats=repeats) for name in scenarios
    }
    # The Squirrel baseline replays the same trace through the same bulk
    # scheduling path; tracked under its own key so Chord-routing or
    # directory-path regressions trip the calibrated gate too.
    scenario_results[f"{SQUIRREL_SCENARIO}:squirrel"] = bench_squirrel(
        scale=scale, repeats=repeats
    )
    document: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "repeats": repeats,
        "quick": quick,
        "micro": micro,
        "scenarios": scenario_results,
    }
    if memory:
        document["memory"] = run_memory_suite(quick=quick)
    if paper_scale:
        # Kept under its own key (not "scenarios") so the per-PR regression
        # gate never requires a minutes-long fresh run to compare against.
        # Isolated in a child process so peak_rss_mb reflects the paper-scale
        # run alone, not whatever suite section peaked earlier.  Both backends
        # run the identical scenario (byte-identical goldens), so the pair of
        # numbers is the object-path vs columnar-kernel comparison.
        document["paper_scale"] = bench_paper_scale(isolate=True)
        document["paper_scale_kernel"] = bench_paper_scale(isolate=True, kernel=True)
        if shards >= 2:
            document["paper_scale_sharded"] = bench_paper_scale_sharded(
                shards=shards, isolate=True
            )
    return document


# -- baseline comparison ------------------------------------------------------


def compare_to_baseline(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = REGRESSION_THRESHOLD,
) -> List[str]:
    """Regression check of ``fresh`` against ``baseline``; empty list = pass.

    Scenario events/sec are compared as *calibrated ratios* (scenario
    events/sec ÷ event-core micro events/sec of the same document), so a
    uniformly slower machine does not read as a regression — only simulation
    code that got slower relative to the interpreter does.
    """
    failures: List[str] = []
    fresh_core = _core_events_per_s(fresh)
    base_core = _core_events_per_s(baseline)
    if not fresh_core or not base_core:
        return ["baseline or fresh run lacks the event_core microbenchmark"]
    fresh_scenarios = fresh.get("scenarios", {})
    for name, base_result in baseline.get("scenarios", {}).items():
        fresh_result = fresh_scenarios.get(name)
        if fresh_result is None:
            failures.append(f"{name}: missing from the fresh run")
            continue
        base_ratio = float(base_result["events_per_s"]) / base_core
        fresh_ratio = float(fresh_result["events_per_s"]) / fresh_core
        if fresh_ratio < base_ratio * (1.0 - threshold):
            failures.append(
                f"{name}: calibrated events/sec regressed "
                f"{(1.0 - fresh_ratio / base_ratio) * 100.0:.1f}% "
                f"(baseline ratio {base_ratio:.4f}, fresh ratio {fresh_ratio:.4f}, "
                f"threshold {threshold * 100.0:.0f}%)"
            )
    return failures


def _core_events_per_s(document: Dict[str, object]) -> Optional[float]:
    try:
        return float(document["micro"]["event_core"]["events_per_s"])  # type: ignore[index]
    except (KeyError, TypeError, ValueError):
        return None


def load_baseline(path: Optional[Path] = None) -> Dict[str, object]:
    baseline_path = path if path is not None else default_baseline_path()
    if not baseline_path.exists():
        raise FileNotFoundError(
            f"no committed perf baseline at {baseline_path}; run "
            f"`python -m repro.cli perf --update-baseline` to create it"
        )
    return json.loads(baseline_path.read_text(encoding="utf-8"))


def write_document(document: Dict[str, object], path: Path) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
