"""Command-line interface for running Flower-CDN experiments.

Usage (after installation)::

    python -m repro.cli run        [options]   # one Flower-CDN run, headline metrics
    python -m repro.cli compare    [options]   # Flower-CDN vs Squirrel on the same trace
    python -m repro.cli churn      [options]   # churn ablation (Section 5 mechanisms)
    python -m repro.cli scenarios list         # the named scenario library
    python -m repro.cli scenarios run NAME     # run one scenario, print metrics JSON
    python -m repro.cli sweep list             # the registered parameter sweeps
    python -m repro.cli sweep run NAME         # run one sweep grid (--jobs N, --out DIR)
    python -m repro.cli serve                  # HTTP job service with a run cache

``sweep`` without a verb (flag-style options only) remains reachable as the
deprecated legacy Table 2 runner.

The experiment commands accept the scale options (``--duration-hours``,
``--query-rate``, ``--websites``, ``--active-websites``, ``--objects``,
``--localities``, ``--overlay-size``, ``--hosts``, ``--seed``);
``--paper-scale`` switches to the full Table 1 configuration instead.  Both
paths construct their configuration through the declarative scenario layer
(:mod:`repro.scenarios`), which is the single source of truth for parameter
sets; ``scenarios run`` additionally supports the golden-metrics workflow
(``--check-golden`` / ``--update-golden``, see ``docs/scenarios.md``).
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis import cli as analysis_cli
from repro.core.churn import ChurnConfig
from repro.core.config import HOUR, MINUTE
from repro.experiments.comparison import run_hit_ratio_comparison
from repro.experiments.churn import run_churn_experiment
from repro.experiments.driver import ExperimentRunner, ExperimentSetup
from repro.experiments.gossip_tradeoff import (
    format_sweep,
    run_gossip_length_sweep,
    run_gossip_period_sweep,
    run_view_size_sweep,
)
from repro.experiments.locality import run_locality_experiment
from repro.metrics.report import format_table
from repro import perf as perf_module
from repro.scenarios import diffing as diffing_module
from repro.scenarios import golden as golden_module
from repro.scenarios import parallel as parallel_module
from repro.scenarios import models as models_module
from repro.scenarios.library import get_scenario, iter_scenarios
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.sweeps import artifacts as sweep_artifacts
from repro.sweeps import golden as sweep_golden
from repro.sweeps.engine import run_sweep
from repro.sweeps.library import get_sweep, iter_sweeps


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Flower-CDN (EDBT 2009) reproduction: experiment runner",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("run", "run Flower-CDN once and print the headline metrics"),
        ("compare", "run Flower-CDN and Squirrel on the same trace (Figures 6-8)"),
        ("churn", "run the churn ablation (Section 5 mechanisms)"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_scale_options(sub)

    sweep = subparsers.add_parser(
        "sweep",
        help="list, show or run the registered parameter sweeps "
             "(flag-only invocation is the deprecated legacy Table 2 runner)",
    )
    # Legacy flag-style options: `repro sweep --duration-hours ...` (no verb)
    # remains reachable as a deprecated alias of the historic Table 2 runner.
    # Defaults are suppressed so legacy flags typed before a verb are
    # detected and rejected instead of silently discarded.
    _add_scale_options(sweep, suppress_defaults=True)
    sweep_verbs = sweep.add_subparsers(dest="verb")
    sweep_verbs.add_parser("list", help="list the sweep registry")
    sweep_show = sweep_verbs.add_parser(
        "show", help="print one sweep's axes and compiled grid"
    )
    sweep_show.add_argument("name", help="sweep name (see `sweep list`)")
    sweep_show.add_argument("--scale", type=float, default=1.0,
                            help="compile the grid at a ratio-preserving scale "
                                 "(default 1.0)")
    sweep_run = sweep_verbs.add_parser(
        "run", help="run one registered sweep and print its result table"
    )
    sweep_run.add_argument("name", help="sweep name (see `sweep list`)")
    sweep_run.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="worker processes over the grid cells "
                                "(default 1; output is byte-identical)")
    # dest differs from the legacy --seed so the two invocation styles can
    # never clobber each other's namespace entries.
    sweep_run.add_argument("--seed", dest="seed_override", type=int, default=None,
                           help="override the base scenario's seed")
    sweep_run.add_argument("--scale", type=float, default=1.0,
                           help="ratio-preserving scale factor for the base "
                                "scenario (default 1.0)")
    sweep_run.add_argument("--out", type=str, default=None, metavar="DIR",
                           help="additionally export artifacts "
                                "(csv/json/md) into DIR")
    sweep_run.add_argument("--table", action="store_true",
                           help="print a human-readable table instead of the "
                                "JSON digest")
    sweep_run.add_argument("--check-golden", action="store_true",
                           help="run at the pinned golden scale/seed and "
                                "compare against the committed sweep golden")
    sweep_run.add_argument("--update-goldens", "--update-golden",
                           dest="update_goldens", action="store_true",
                           help="rewrite the sweep's committed golden file")

    scenarios = subparsers.add_parser(
        "scenarios", help="list, show or run the named scenarios of the library"
    )
    verbs = scenarios.add_subparsers(dest="verb", required=True)
    verbs.add_parser("list", help="list the scenario library")
    verbs.add_parser(
        "models",
        help="list the registered churn and fault models with their parameters",
    )
    show_verb = verbs.add_parser(
        "show", help="print one scenario's fully resolved spec, program and models"
    )
    show_verb.add_argument("name", help="scenario name (see `scenarios list`)")
    show_verb.add_argument("--json", action="store_true",
                           help="emit the resolved spec as JSON instead of tables")
    show_verb.add_argument("--scale", type=float, default=1.0,
                           help="show the spec at a ratio-preserving scale "
                                "(default 1.0, i.e. as registered)")
    run_verb = verbs.add_parser(
        "run", help="run one library scenario (or --all) and print metrics JSON"
    )
    run_verb.add_argument("name", nargs="?", default=None,
                          help="scenario name (see `scenarios list`)")
    run_verb.add_argument("--all", action="store_true",
                          help="run every scenario of the library")
    run_verb.add_argument("--jobs", type=int, default=None, metavar="N",
                          help="worker processes for --all (default: CPU count)")
    run_verb.add_argument("--seed", type=int, default=None,
                          help="override the scenario's seed")
    run_verb.add_argument("--scale", type=float, default=1.0,
                          help="ratio-preserving scale factor (default 1.0)")
    run_verb.add_argument("--table", action="store_true",
                          help="print a human-readable table instead of JSON")
    run_verb.add_argument("--out", type=str, default=None, metavar="DIR",
                          help="additionally export the run bundle "
                               "(digest.json/result.json/series.csv/summary.md"
                               " — the exact layout the `repro serve` run "
                               "store keeps) into DIR")
    run_verb.add_argument("--shards", type=int, default=None, metavar="N",
                          help="run through the space-parallel shard engine "
                               "with N shard engines (N >= 2; results are "
                               "digest-identical to the single-process "
                               "default)")
    run_verb.add_argument("--shard-jobs", type=int, default=None, metavar="N",
                          help="worker processes for --shards (default: CPU "
                               "affinity count; 1 runs shards inline)")
    run_verb.add_argument("--kernel", action="store_true",
                          help="run Flower-CDN on the columnar kernel backend "
                               "(digest-identical to the object backend)")
    run_verb.add_argument("--check-golden", action="store_true",
                          help="run at the pinned golden scale/seed and compare "
                               "against the committed golden file")
    run_verb.add_argument("--update-goldens", "--update-golden",
                          dest="update_goldens", action="store_true",
                          help="rewrite the scenario's committed golden file")
    diff_verb = verbs.add_parser(
        "diff", help="compare two metrics digests (files produced by `scenarios run`)"
    )
    diff_verb.add_argument("left", type=str, help="baseline digest JSON file")
    diff_verb.add_argument("right", type=str, help="candidate digest JSON file")
    diff_verb.add_argument("--exact", action="store_true",
                           help="require byte-identical metrics instead of the "
                                "golden tolerance bands")
    diff_verb.add_argument("--all-metrics", action="store_true",
                           help="print unchanged metrics too")

    analyze = subparsers.add_parser(
        "analyze",
        help="static determinism/invariant analysis of the source tree "
             "(rules DET001..DET006, see docs/determinism.md)",
    )
    analysis_cli.add_analyze_arguments(analyze)

    perf = subparsers.add_parser(
        "perf", help="run the perf-benchmark suite and emit BENCH_core.json"
    )
    perf.add_argument("--output", type=str, default="BENCH_core.json",
                      help="where to write the benchmark document "
                           "(default: ./BENCH_core.json; '-' for stdout only)")
    perf.add_argument("--scenarios", type=str, default=",".join(perf_module.DEFAULT_SCENARIOS),
                      help="comma-separated scenario names to benchmark")
    perf.add_argument("--scale", type=float, default=1.0,
                      help="scenario scale factor (default 1.0)")
    perf.add_argument("--repeats", type=int, default=3,
                      help="best-of repetitions per benchmark (default 3)")
    perf.add_argument("--quick", action="store_true",
                      help="shrunken smoke configuration (CI / tests)")
    perf.add_argument("--check", action="store_true",
                      help="compare against the committed baseline and fail on "
                           "calibrated events/sec regressions > "
                           f"{perf_module.REGRESSION_THRESHOLD:.0%}")
    perf.add_argument("--baseline", type=str, default=None,
                      help="baseline path for --check (default: the committed "
                           "benchmarks/perf/BENCH_core.json)")
    perf.add_argument("--update-baseline", action="store_true",
                      help="write the results to the committed baseline path")
    perf.add_argument("--paper-scale", action="store_true",
                      help="additionally run the paper-scale benchmark "
                           "(paper-default-full-scale end to end with wall/RSS "
                           "accounting; takes minutes)")
    perf.add_argument("--shards", type=int, default=0, metavar="N",
                      help="with --paper-scale: additionally run the "
                           "paper-scale scenario through the space-parallel "
                           "shard engine with N shards and record the "
                           "paper_scale_sharded section")
    perf.add_argument("--no-memory", dest="memory", action="store_false",
                      help="skip the tracemalloc memory benchmarks")

    serve = subparsers.add_parser(
        "serve",
        help="run the HTTP job service (scenario/sweep runs with a "
             "digest-keyed run cache; see docs/service.md)",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8437,
                       help="listen port (default 8437; 0 picks an "
                            "ephemeral port and prints it)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes executing jobs (default: CPU "
                            "affinity count, capped at 4)")
    serve.add_argument("--max-queue", type=int, default=16, metavar="M",
                       help="queued-job bound before submissions get "
                            "HTTP 429 + Retry-After (default 16)")
    serve.add_argument("--store", type=str, default="run-store", metavar="DIR",
                       help="on-disk run store directory (default ./run-store)")
    serve.add_argument("--store-max-bytes", type=int, default=None, metavar="B",
                       help="evict least-recently-used run bundles once the "
                            "store exceeds B bytes (default: unbounded)")
    serve.add_argument("--timeout", type=float, default=3600.0, metavar="S",
                       dest="timeout_s",
                       help="per-job wall-clock timeout in seconds "
                            "(default 3600; 0 disables)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    return parser


#: the legacy scale options and their defaults (dest name -> default value)
SCALE_OPTION_DEFAULTS = {
    "paper_scale": False,
    "duration_hours": 3.0,
    "query_rate": 2.0,
    "websites": 20,
    "active_websites": 2,
    "objects": 200,
    "localities": 3,
    "overlay_size": 40,
    "hosts": 600,
    "seed": 42,
}


def _add_scale_options(
    parser: argparse.ArgumentParser, suppress_defaults: bool = False
) -> None:
    """Add the classic experiment scale options.

    ``suppress_defaults=True`` registers them with ``argparse.SUPPRESS``
    defaults so an option only appears on the namespace when the user typed
    it — the ``sweep`` command needs that to tell its deprecated flag-style
    legacy form apart from the verb-style form (and to *reject*, rather than
    silently drop, legacy flags placed before a verb).
    """
    def default(name: str):
        return argparse.SUPPRESS if suppress_defaults else SCALE_OPTION_DEFAULTS[name]

    parser.add_argument("--paper-scale", action="store_true",
                        default=default("paper_scale"),
                        help="use the paper's full Table 1 configuration (slow)")
    parser.add_argument("--duration-hours", type=float, default=default("duration_hours"))
    parser.add_argument("--query-rate", type=float, default=default("query_rate"))
    parser.add_argument("--websites", type=int, default=default("websites"))
    parser.add_argument("--active-websites", type=int, default=default("active_websites"))
    parser.add_argument("--objects", type=int, default=default("objects"))
    parser.add_argument("--localities", type=int, default=default("localities"))
    parser.add_argument("--overlay-size", type=int, default=default("overlay_size"))
    parser.add_argument("--hosts", type=int, default=default("hosts"))
    parser.add_argument("--seed", type=int, default=default("seed"))


def setup_from_args(args: argparse.Namespace) -> ExperimentSetup:
    """Build the experiment setup the scale options describe.

    Everything flows through a :class:`ScenarioSpec` so the command line, the
    scenario library and the benchmarks share one construction path.
    """
    if args.paper_scale:
        return ExperimentSetup.paper_scale(seed=args.seed)
    duration_s = args.duration_hours * HOUR
    return ScenarioSpec(
        name="cli-adhoc",
        description="ad-hoc configuration assembled from command-line options",
        duration_s=duration_s,
        # Preserve the historical CLI windowing (5-minute floor) so windowed
        # series printed by pre-existing commands are unchanged.
        metrics_window_s=max(5 * MINUTE, duration_s / 12.0),
        query_rate_per_s=args.query_rate,
        num_websites=args.websites,
        active_websites=args.active_websites,
        objects_per_website=args.objects,
        num_localities=args.localities,
        max_content_overlay_size=args.overlay_size,
        num_hosts=args.hosts,
        seed=args.seed,
    ).to_setup()


# -- subcommands ------------------------------------------------------------------------


def _command_run(setup: ExperimentSetup, out) -> int:
    result = ExperimentRunner(setup).run_flower()
    print(
        format_table(
            ["metric", "value"],
            [
                ("queries", result.num_queries),
                ("hit ratio", result.hit_ratio),
                ("avg lookup latency (ms)", result.average_lookup_latency_ms),
                ("avg transfer distance (ms)", result.average_transfer_distance_ms),
                ("background traffic (bps/peer)", result.background_bps_per_peer),
                ("redirection failures", result.redirection_failures),
            ],
            title="Flower-CDN run",
        ),
        file=out,
    )
    return 0


def _command_compare(setup: ExperimentSetup, out) -> int:
    comparison = run_hit_ratio_comparison(setup)
    print(comparison.format(), file=out)
    print(file=out)
    locality = run_locality_experiment(setup)
    print(locality.format_figure7(), file=out)
    print(file=out)
    print(locality.format_figure8(), file=out)
    return 0


def _command_sweep_legacy(setup: ExperimentSetup, out) -> int:
    print(format_sweep(run_gossip_length_sweep(setup), "Table 2(a): varying Lgossip"), file=out)
    print(file=out)
    print(
        format_sweep(
            run_gossip_period_sweep(setup, values=(1 * MINUTE, 30 * MINUTE, 1 * HOUR)),
            "Table 2(b): varying Tgossip",
        ),
        file=out,
    )
    print(file=out)
    print(format_sweep(run_view_size_sweep(setup), "Table 2(c): varying Vgossip"), file=out)
    return 0


# -- the `sweep` command ----------------------------------------------------------------


def _command_sweep_list(out) -> int:
    rows = []
    for sweep in iter_sweeps():
        grid = "x".join(str(side) for side in sweep.grid_shape) or "1"
        rows.append(
            (
                sweep.name,
                sweep.base,
                grid,
                sweep.num_cells,
                sweep.seed_policy,
                sweep.description,
            )
        )
    print(
        format_table(
            ["sweep", "base", "grid", "cells", "seeds", "description"],
            rows,
            title="Sweep registry",
        ),
        file=out,
    )
    return 0


def _command_sweep_show(args: argparse.Namespace, out) -> int:
    try:
        sweep = get_sweep(args.name)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.scale <= 0:
        print("error: --scale must be positive", file=sys.stderr)
        return 2
    print(format_table(
        ["field", "value"],
        [
            ("name", sweep.name),
            ("base", sweep.base),
            ("grid", "x".join(str(side) for side in sweep.grid_shape) or "1"),
            ("cells", sweep.num_cells),
            ("seed policy", sweep.seed_policy),
        ],
        title=f"Sweep: {sweep.name}",
    ), file=out)
    print(file=out)
    print(f"  {sweep.description}", file=out)
    print(file=out)
    if sweep.axes:
        axis_rows = [
            (
                axis.label,
                ", ".join(axis.fields),
                ", ".join(axis.display_value(i) for i in range(len(axis))),
            )
            for axis in sweep.axes
        ]
        print(format_table(["axis", "fields", "values"], axis_rows, title="Axes"),
              file=out)
        print(file=out)
    compiled = sweep.compile(scale=None if args.scale == 1.0 else args.scale)
    cell_rows = [
        (
            ",".join(str(i) for i in cell.coordinates) or "-",
            " ".join(f"{label}={value}" for label, value in cell.labels) or "(base)",
            cell.seed,
        )
        for cell in compiled.cells
    ]
    print(format_table(["cell", "assignments", "seed"], cell_rows,
                       title=f"Compiled grid (base seed {compiled.base_seed}, "
                             f"scale {compiled.scale:g})"), file=out)
    return 0


def _command_sweep_run(args: argparse.Namespace, out) -> int:
    try:
        get_sweep(args.name)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.jobs <= 0:
        print("error: --jobs must be positive", file=sys.stderr)
        return 2
    if args.check_golden and args.update_goldens:
        print("error: --check-golden cannot be combined with --update-goldens",
              file=sys.stderr)
        return 2
    if (args.update_goldens or args.check_golden) and (
        args.seed_override is not None or args.scale != 1.0 or args.table
        or args.out
    ):
        print(
            "error: sweep goldens are pinned to the golden scale and seed; "
            "--seed/--scale/--table/--out cannot be combined with "
            "--check-golden/--update-goldens",
            file=sys.stderr,
        )
        return 2
    if args.update_goldens:
        path = sweep_golden.write_sweep_golden(args.name, jobs=args.jobs)
        print(f"updated {path}", file=out)
        return 0
    if args.check_golden:
        return sweep_golden.main([args.name, "--jobs", str(args.jobs)], out=out)
    if args.scale <= 0:
        print("error: --scale must be positive", file=sys.stderr)
        return 2
    result = run_sweep(
        args.name,
        jobs=args.jobs,
        seed=args.seed_override,
        scale=None if args.scale == 1.0 else args.scale,
    )
    if args.out:
        for path in sweep_artifacts.export_artifacts(result, Path(args.out)):
            print(f"wrote {path}", file=out)
    if args.table:
        print(sweep_artifacts.format_sweep_result(result), file=out)
    else:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True), file=out)
    return 0


def _command_sweep(args: argparse.Namespace, out) -> int:
    verb = getattr(args, "verb", None)
    # The legacy options were registered with suppressed defaults, so an
    # entry on the namespace means the user actually typed the flag.
    legacy_given = [name for name in SCALE_OPTION_DEFAULTS if hasattr(args, name)]
    if verb is None:
        # Legacy flag-style invocation (pre-registry behaviour), kept
        # reachable as a deprecation shim.
        print(
            "note: flag-style `repro sweep` is deprecated; use "
            "`repro sweep run NAME` against the sweep registry "
            "(`repro sweep list`)",
            file=sys.stderr,
        )
        for name, value in SCALE_OPTION_DEFAULTS.items():
            if not hasattr(args, name):
                setattr(args, name, value)
        return _command_sweep_legacy(setup_from_args(args), out)
    if legacy_given:
        flags = ", ".join("--" + name.replace("_", "-") for name in legacy_given)
        print(
            f"error: legacy scale option(s) {flags} cannot be combined with "
            f"`sweep {verb}`; pass options after the verb "
            f"(see `repro sweep {verb} --help`)",
            file=sys.stderr,
        )
        return 2
    if verb == "list":
        return _command_sweep_list(out)
    if verb == "show":
        return _command_sweep_show(args, out)
    return _command_sweep_run(args, out)


def _command_churn(setup: ExperimentSetup, out) -> int:
    result = run_churn_experiment(
        setup,
        churn=ChurnConfig(
            content_failures_per_hour=30.0,
            directory_failures_per_hour=3.0,
            locality_changes_per_hour=6.0,
        ),
    )
    print(result.format(), file=out)
    return 0


# -- the `scenarios` command ------------------------------------------------------------


def _command_scenarios_list(out) -> int:
    rows = []
    for spec in iter_scenarios():
        systems = "+".join(spec.systems)
        churn = "yes" if spec.churn.is_enabled else "no"
        rows.append(
            (
                spec.name,
                spec.tier,
                systems,
                f"{spec.duration_s / HOUR:.1f}",
                churn,
                spec.description,
            )
        )
    print(
        format_table(
            ["scenario", "tier", "systems", "hours", "churn", "description"],
            rows,
            title="Scenario library",
        ),
        file=out,
    )
    return 0


def _command_scenarios_models(out) -> int:
    """The ``scenarios models`` verb: the churn/fault model registries.

    Every registered model is listed with its constructor parameters (the
    keys a :class:`~repro.scenarios.models.ModelRef` accepts) and the first
    line of its docstring, so a spec author can discover what a scenario's
    ``churn_model=`` / ``fault_model=`` fields may refer to without reading
    the registry source.
    """
    for kind, factories in (
        ("Churn", models_module.churn_model_factories()),
        ("Fault", models_module.fault_model_factories()),
    ):
        rows = []
        for name, factory in factories.items():
            try:
                parameters = [
                    parameter
                    for parameter in inspect.signature(factory).parameters.values()
                    if parameter.name != "self"
                    and parameter.kind is not inspect.Parameter.VAR_KEYWORD
                ]
            except (TypeError, ValueError):  # builtins without signatures
                parameters = []
            rendered = ", ".join(
                parameter.name
                if parameter.default is inspect.Parameter.empty
                else f"{parameter.name}={parameter.default!r}"
                for parameter in parameters
            )
            doc = inspect.getdoc(factory) or ""
            summary = doc.splitlines()[0] if doc else ""
            rows.append((name, rendered or "(none)", summary))
        print(
            format_table(
                ["model", "parameters", "description"],
                rows,
                title=f"{kind} models",
            ),
            file=out,
        )
    return 0


def _command_scenarios_show(args: argparse.Namespace, out) -> int:
    """The ``scenarios show`` verb: resolved spec + program, for debugging."""
    try:
        spec = get_scenario(args.name)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.scale <= 0:
        print("error: --scale must be positive", file=sys.stderr)
        return 2
    if args.scale != 1.0:
        spec = spec.scaled(args.scale)
    spans = spec.compiled_program()

    if args.json:
        document = spec.to_dict()
        document["effective"] = {
            "metrics_window_s": spec.effective_metrics_window_s,
            "keepalive_period_s": spec.effective_keepalive_period_s,
            "warmup_s": spec.warmup_s,
            "locality_bits": spec.locality_bits(),
        }
        document["compiled_program"] = [
            {
                "start_s": span.start_s,
                "end_s": span.end_s,
                "rate_multiplier": span.rate_multiplier,
                "zipf_alpha": span.zipf_alpha,
                "hotspot_rotation": span.hotspot_rotation,
            }
            for span in spans
        ]
        print(json.dumps(document, indent=2, sort_keys=True), file=out)
        return 0

    data = spec.to_dict()
    skip = {"program", "churn_model", "fault_model", "churn", "description"}
    rows = [
        (key, json.dumps(value) if isinstance(value, (list, dict)) else value)
        for key, value in sorted(data.items())
        if key not in skip
    ]
    print(format_table(["field", "value"], rows, title=f"Scenario: {spec.name}"), file=out)
    print(file=out)
    print(f"  {spec.description}", file=out)
    print(file=out)

    if spans:
        phase_rows = [
            (
                index,
                f"{span.start_s:.0f}",
                f"{span.end_s:.0f}",
                f"x{span.rate_multiplier:g}",
                "inherit" if span.zipf_alpha is None else f"{span.zipf_alpha:g}",
                span.hotspot_rotation,
            )
            for index, span in enumerate(spans)
        ]
        print(
            format_table(
                ["phase", "start(s)", "end(s)", "rate", "zipf", "rotation"],
                phase_rows,
                title="Workload program",
            ),
            file=out,
        )
    else:
        print("Workload program: single stationary phase (no program)", file=out)
    print(file=out)

    churn = spec.churn
    churn_desc = (
        f"content={churn.content_failures_per_hour:g}/h, "
        f"directory={churn.directory_failures_per_hour:g}/h, "
        f"locality={churn.locality_changes_per_hour:g}/h"
        if churn.is_enabled
        else "idle profile"
    )
    print(f"Churn model: {spec.churn_model.name} "
          f"{spec.churn_model.kwargs or ''} ({churn_desc})", file=out)
    print(f"Fault model: {spec.fault_model.name} "
          f"{spec.fault_model.kwargs or ''}", file=out)
    return 0


def _command_scenarios_diff(args: argparse.Namespace, out) -> int:
    try:
        left = diffing_module.load_digest(Path(args.left))
        right = diffing_module.load_digest(Path(args.right))
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    diff = diffing_module.diff_digests(left, right, exact=args.exact)
    print(diffing_module.format_diff(diff, all_rows=args.all_metrics), file=out)
    return 1 if diff.out_of_tolerance else 0


def _command_scenarios_run_all(args: argparse.Namespace, out) -> int:
    """The ``scenarios run --all [--jobs N]`` path (parallel execution)."""
    if args.name is not None:
        print("error: --all cannot be combined with a scenario name", file=sys.stderr)
        return 2
    if args.table or args.update_goldens:
        print("error: --all supports JSON digests and --check-golden only",
              file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs <= 0:
        print("error: --jobs must be positive", file=sys.stderr)
        return 2
    if args.check_golden:
        if args.seed is not None or args.scale != 1.0:
            print("error: golden digests are pinned to the golden scale and "
                  "seed; --seed/--scale cannot be combined with --check-golden",
                  file=sys.stderr)
            return 2
        results = parallel_module.check_goldens(jobs=args.jobs)
        failures = 0
        for name, mismatches in results.items():
            if mismatches:
                failures += 1
                print(f"FAIL {name}:", file=out)
                for mismatch in mismatches:
                    print(f"  {mismatch}", file=out)
            else:
                print(f"ok   {name}", file=out)
        return 1 if failures else 0
    if args.scale <= 0:
        print("error: --scale must be positive", file=sys.stderr)
        return 2
    digests = parallel_module.run_scenarios(
        jobs=args.jobs, seed=args.seed, scale=args.scale
    )
    print(json.dumps(digests, indent=2, sort_keys=True), file=out)
    return 0


def _command_scenarios_run(args: argparse.Namespace, out) -> int:
    if args.all:
        return _command_scenarios_run_all(args, out)
    if args.name is None:
        print("error: a scenario name (or --all) is required", file=sys.stderr)
        return 2
    try:
        spec = get_scenario(args.name)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.jobs is not None:
        print("error: --jobs only applies to --all", file=sys.stderr)
        return 2
    if (args.update_goldens or args.check_golden) and (
        args.seed is not None or args.scale != 1.0 or args.table
    ):
        print(
            "error: golden digests are pinned to the golden scale and seed; "
            "--seed/--scale/--table cannot be combined with "
            "--check-golden/--update-goldens",
            file=sys.stderr,
        )
        return 2
    if args.shards is not None and args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.update_goldens and (args.shards is not None or args.kernel):
        print(
            "error: goldens are produced by the single-process object "
            "backend; --shards/--kernel runs must match them, not define "
            "them (use --check-golden to verify equivalence)",
            file=sys.stderr,
        )
        return 2
    if args.update_goldens:
        path = golden_module.write_golden(args.name)
        print(f"updated {path}", file=out)
        return 0
    if args.check_golden:
        # Golden digests are pinned to a fixed scale and seed; --scale/--seed
        # do not apply here.  --shards/--kernel pass through: the committed
        # golden doubles as the equivalence oracle for both backends and for
        # the space-parallel shard engine.
        argv = [args.name]
        if args.kernel:
            argv.append("--kernel")
        if args.shards is not None and args.shards != 1:
            argv.extend(["--shards", str(args.shards)])
        return golden_module.main(argv, out=out)

    if args.scale <= 0:
        print("error: --scale must be positive", file=sys.stderr)
        return 2
    result = run_scenario(
        spec,
        seed=args.seed,
        scale=args.scale,
        kernel=args.kernel,
        shards=args.shards,
        shard_jobs=args.shard_jobs,
    )
    if args.out is not None:
        from repro.scenarios.artifacts import export_run_bundle

        for path in export_run_bundle(result, Path(args.out), scale=args.scale):
            print(f"wrote {path}", file=out)
    if args.table:
        for name, system in result.systems.items():
            print(
                format_table(
                    ["metric", "value"],
                    sorted(system.metrics.items()),
                    title=f"{spec.name} — {name}",
                ),
                file=out,
            )
            print(file=out)
    else:
        digest = golden_module.result_digest(result, scale=args.scale)
        print(json.dumps(digest, indent=2, sort_keys=True), file=out)
    return 0


def _command_perf(args: argparse.Namespace, out) -> int:
    """The ``perf`` verb: run the suite, optionally gate against the baseline."""
    if args.repeats <= 0:
        print("error: --repeats must be positive", file=sys.stderr)
        return 2
    if args.scale <= 0:
        print("error: --scale must be positive", file=sys.stderr)
        return 2
    if args.update_baseline and args.check:
        # --check compares against the committed baseline; combining the two
        # would overwrite it first and then vacuously compare a run to itself.
        print("error: --update-baseline cannot be combined with --check; "
              "check first, then refresh the baseline", file=sys.stderr)
        return 2
    if args.shards and not args.paper_scale:
        print("error: --shards requires --paper-scale (the sharded benchmark "
              "is a paper-scale section)", file=sys.stderr)
        return 2
    if args.shards and args.shards < 2:
        print("error: --shards must be >= 2", file=sys.stderr)
        return 2
    scenario_names_arg = [name for name in args.scenarios.split(",") if name]
    document = perf_module.run_suite(
        scenarios=scenario_names_arg,
        scale=args.scale,
        repeats=args.repeats,
        quick=args.quick,
        memory=args.memory,
        paper_scale=args.paper_scale,
        shards=args.shards,
    )
    if args.update_baseline:
        baseline_path = perf_module.default_baseline_path()
        if "paper_scale" not in document and baseline_path.exists():
            # A refresh without --paper-scale must not silently drop the
            # committed paper-scale sections (the nightly tier and its tests
            # rely on them): carry the previous numbers over.
            try:
                previous = perf_module.suite.load_baseline(baseline_path)
            except (OSError, json.JSONDecodeError):
                previous = {}
            carried = [
                key
                for key in ("paper_scale", "paper_scale_kernel", "paper_scale_sharded")
                if key in previous
            ]
            for key in carried:
                document[key] = previous[key]
            if carried:
                print(
                    "note: kept the previous {} baseline section(s) "
                    "(re-run with --paper-scale to refresh)".format(
                        "/".join(carried)
                    ),
                    file=out,
                )
        path = perf_module.suite.write_document(document, baseline_path)
        print(f"updated baseline {path}", file=out)
    if args.output and args.output != "-":
        path = perf_module.suite.write_document(document, Path(args.output))
        print(f"wrote {path}", file=out)
    print(json.dumps(document, indent=2, sort_keys=True), file=out)
    if args.check:
        baseline_path = Path(args.baseline) if args.baseline else None
        try:
            baseline = perf_module.suite.load_baseline(baseline_path)
        except FileNotFoundError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        failures = perf_module.compare_to_baseline(document, baseline)
        if failures:
            print("PERF REGRESSION:", file=out)
            for failure in failures:
                print(f"  {failure}", file=out)
            return 1
        print("perf check ok (no calibrated events/sec regression "
              f"> {perf_module.REGRESSION_THRESHOLD:.0%})", file=out)
    return 0


def _command_serve(args: argparse.Namespace, out) -> int:
    """The ``serve`` verb: run the HTTP job service until SIGTERM/SIGINT.

    Termination signals trigger a graceful drain — the server stops
    accepting submissions, finishes every in-flight job (the run store is
    already durable for each completed one), and exits 0.
    """
    import signal
    import threading

    from repro.service import ReproService, ServiceConfig

    if args.port < 0:
        print("error: --port must be >= 0", file=sys.stderr)
        return 2
    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_queue=args.max_queue,
            store_dir=Path(args.store),
            store_max_bytes=args.store_max_bytes,
            timeout_s=None if args.timeout_s <= 0 else args.timeout_s,
            verbose=args.verbose,
        )
        service = ReproService(config)
        service.start()
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"repro serve listening on {service.url} "
        f"(store: {config.store_dir}, workers: {service.manager.workers}, "
        f"max-queue: {config.max_queue})",
        file=out,
        flush=True,
    )
    stop = threading.Event()

    def _on_signal(signum: int, _frame: object) -> None:
        print(
            f"received {signal.Signals(signum).name}: draining in-flight jobs",
            file=out,
            flush=True,
        )
        stop.set()

    previous = {
        signum: signal.signal(signum, _on_signal)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    drained = service.stop(drain=True)
    print("drained" if drained else "drain timed out", file=out, flush=True)
    return 0 if drained else 1


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    try:
        return _dispatch(build_parser().parse_args(argv), out)
    except BrokenPipeError:
        # Downstream consumer (e.g. `... | head`) closed the pipe: that is a
        # normal way to stop reading, not an error.  Detach stdout so the
        # interpreter's shutdown flush does not raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _dispatch(args: argparse.Namespace, out) -> int:
    if args.command == "scenarios":
        if args.verb == "list":
            return _command_scenarios_list(out)
        if args.verb == "models":
            return _command_scenarios_models(out)
        if args.verb == "show":
            return _command_scenarios_show(args, out)
        if args.verb == "diff":
            return _command_scenarios_diff(args, out)
        return _command_scenarios_run(args, out)
    if args.command == "analyze":
        return analysis_cli.run_analyze(args, out)
    if args.command == "perf":
        return _command_perf(args, out)
    if args.command == "sweep":
        return _command_sweep(args, out)
    if args.command == "serve":
        return _command_serve(args, out)
    setup = setup_from_args(args)
    handlers = {
        "run": _command_run,
        "compare": _command_compare,
        "churn": _command_churn,
    }
    return handlers[args.command](setup, out)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
