"""Command-line interface for running Flower-CDN experiments.

Usage (after installation)::

    python -m repro.cli run        [options]   # one Flower-CDN run, headline metrics
    python -m repro.cli compare    [options]   # Flower-CDN vs Squirrel on the same trace
    python -m repro.cli sweep      [options]   # the Table 2 gossip sweeps
    python -m repro.cli churn      [options]   # churn ablation (Section 5 mechanisms)

All commands accept the scale options (``--duration-hours``, ``--query-rate``,
``--websites``, ``--active-websites``, ``--objects``, ``--localities``,
``--overlay-size``, ``--hosts``, ``--seed``); ``--paper-scale`` switches to the
full Table 1 configuration instead.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.churn import ChurnConfig
from repro.core.config import HOUR, MINUTE
from repro.experiments.comparison import run_hit_ratio_comparison
from repro.experiments.churn import run_churn_experiment
from repro.experiments.driver import ExperimentRunner, ExperimentSetup
from repro.experiments.gossip_tradeoff import (
    format_sweep,
    run_gossip_length_sweep,
    run_gossip_period_sweep,
    run_view_size_sweep,
)
from repro.experiments.locality import run_locality_experiment
from repro.metrics.report import format_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Flower-CDN (EDBT 2009) reproduction: experiment runner",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("run", "run Flower-CDN once and print the headline metrics"),
        ("compare", "run Flower-CDN and Squirrel on the same trace (Figures 6-8)"),
        ("sweep", "run the Table 2 gossip parameter sweeps"),
        ("churn", "run the churn ablation (Section 5 mechanisms)"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_scale_options(sub)
    return parser


def _add_scale_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's full Table 1 configuration (slow)")
    parser.add_argument("--duration-hours", type=float, default=3.0)
    parser.add_argument("--query-rate", type=float, default=2.0)
    parser.add_argument("--websites", type=int, default=20)
    parser.add_argument("--active-websites", type=int, default=2)
    parser.add_argument("--objects", type=int, default=200)
    parser.add_argument("--localities", type=int, default=3)
    parser.add_argument("--overlay-size", type=int, default=40)
    parser.add_argument("--hosts", type=int, default=600)
    parser.add_argument("--seed", type=int, default=42)


def setup_from_args(args: argparse.Namespace) -> ExperimentSetup:
    if args.paper_scale:
        return ExperimentSetup.paper_scale(seed=args.seed)
    return ExperimentSetup.laptop_scale(
        seed=args.seed,
        duration_s=args.duration_hours * HOUR,
        query_rate_per_s=args.query_rate,
        num_websites=args.websites,
        active_websites=args.active_websites,
        objects_per_website=args.objects,
        num_localities=args.localities,
        max_content_overlay_size=args.overlay_size,
        num_hosts=args.hosts,
    )


# -- subcommands ------------------------------------------------------------------------


def _command_run(setup: ExperimentSetup, out) -> int:
    result = ExperimentRunner(setup).run_flower()
    print(
        format_table(
            ["metric", "value"],
            [
                ("queries", result.num_queries),
                ("hit ratio", result.hit_ratio),
                ("avg lookup latency (ms)", result.average_lookup_latency_ms),
                ("avg transfer distance (ms)", result.average_transfer_distance_ms),
                ("background traffic (bps/peer)", result.background_bps_per_peer),
                ("redirection failures", result.redirection_failures),
            ],
            title="Flower-CDN run",
        ),
        file=out,
    )
    return 0


def _command_compare(setup: ExperimentSetup, out) -> int:
    comparison = run_hit_ratio_comparison(setup)
    print(comparison.format(), file=out)
    print(file=out)
    locality = run_locality_experiment(setup)
    print(locality.format_figure7(), file=out)
    print(file=out)
    print(locality.format_figure8(), file=out)
    return 0


def _command_sweep(setup: ExperimentSetup, out) -> int:
    print(format_sweep(run_gossip_length_sweep(setup), "Table 2(a): varying Lgossip"), file=out)
    print(file=out)
    print(
        format_sweep(
            run_gossip_period_sweep(setup, values=(1 * MINUTE, 30 * MINUTE, 1 * HOUR)),
            "Table 2(b): varying Tgossip",
        ),
        file=out,
    )
    print(file=out)
    print(format_sweep(run_view_size_sweep(setup), "Table 2(c): varying Vgossip"), file=out)
    return 0


def _command_churn(setup: ExperimentSetup, out) -> int:
    result = run_churn_experiment(
        setup,
        churn=ChurnConfig(
            content_failures_per_hour=30.0,
            directory_failures_per_hour=3.0,
            locality_changes_per_hour=6.0,
        ),
    )
    print(result.format(), file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    setup = setup_from_args(args)
    handlers = {
        "run": _command_run,
        "compare": _command_compare,
        "sweep": _command_sweep,
        "churn": _command_churn,
    }
    return handlers[args.command](setup, out)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
