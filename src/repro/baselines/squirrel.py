"""The Squirrel baseline (Iyer, Rowstron, Druschel — PODC 2002).

Squirrel organises *all* participant peers into a single DHT without any
locality or interest awareness.  The paper compares against Squirrel's
*directory* strategy (Section 6.1): for each requested object, the peer whose
identifier is closest to ``hash(url)`` — the *home node* — keeps a small
directory of pointers to recent downloaders; every query is routed through
the DHT to the home node and then redirected to one of the downloaders.  The
*home-store* strategy (the home node caches the object itself) is provided as
an extension and exercised by an ablation benchmark.

The implementation mirrors :class:`~repro.core.system.FlowerCDN`'s interface
(``bootstrap`` / ``handle_query`` returning a
:class:`~repro.metrics.collectors.QueryRecord`) so both systems can be driven
by the same experiment runner on the same query trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.metrics.collectors import MetricsCollector, QueryOutcome, QueryRecord
from repro.network.latency import LatencyModel
from repro.network.topology import Topology
from repro.overlay.chord import ChordRing
from repro.overlay.idspace import IdSpace
from repro.sim.engine import Simulator
from repro.workload.assignment import ResolvedQuery
from repro.workload.catalog import ObjectId


class SquirrelStrategy(Enum):
    """Squirrel's two object-location strategies."""

    DIRECTORY = "directory"
    HOME_STORE = "home_store"


@dataclass(frozen=True)
class SquirrelConfig:
    """Configuration of the Squirrel baseline."""

    id_bits: int = 32
    strategy: SquirrelStrategy = SquirrelStrategy.DIRECTORY
    #: maximum number of downloader pointers kept per object (directory strategy)
    directory_capacity: int = 4
    #: optional bound on a peer's cache; None matches the paper's assumption
    cache_capacity: Optional[int] = None
    metrics_window_s: float = 3600.0
    #: maximum stale pointers tried before falling back to the origin server
    max_redirection_attempts: int = 3

    def __post_init__(self) -> None:
        if not 8 <= self.id_bits <= 160:
            raise ValueError("id_bits must be in [8, 160]")
        if self.directory_capacity <= 0:
            raise ValueError("directory_capacity must be positive")
        if self.cache_capacity is not None and self.cache_capacity <= 0:
            raise ValueError("cache_capacity must be positive or None")
        if self.metrics_window_s <= 0:
            raise ValueError("metrics_window_s must be positive")
        if self.max_redirection_attempts <= 0:
            raise ValueError("max_redirection_attempts must be positive")


@dataclass
class SquirrelPeer:
    """One participant peer of the Squirrel overlay."""

    peer_id: str
    host_id: int
    node_id: int
    cache: Set[ObjectId] = field(default_factory=set)
    alive: bool = True

    def has_object(self, object_id: ObjectId) -> bool:
        return object_id in self.cache

    def store_object(self, object_id: ObjectId) -> None:
        self.cache.add(object_id)


class Squirrel:
    """A simulated Squirrel deployment over a single Chord ring."""

    def __init__(
        self,
        config: SquirrelConfig,
        sim: Simulator,
        topology: Topology,
        latency_model: Optional[LatencyModel] = None,
        compact_metrics: bool = False,
    ) -> None:
        self.config = config
        self.sim = sim
        self.topology = topology
        self.latency = latency_model or LatencyModel(topology)
        self.idspace = IdSpace(config.id_bits)
        self.ring = ChordRing(self.idspace, auto_stabilize=False)
        self.metrics = MetricsCollector(
            window_s=config.metrics_window_s, retain_records=not compact_metrics
        )

        self._peers: Dict[str, SquirrelPeer] = {}
        self._peers_by_host: Dict[int, str] = {}
        self._peers_by_node: Dict[int, str] = {}
        #: object directories, conceptually stored at the object's current home
        #: node.  Keyed by object id: when membership changes move the home
        #: node, this models the key handoff a real DHT performs on join.
        self._directories: Dict[ObjectId, List[str]] = {}
        #: objects replicated at their home node (home-store strategy), with the
        #: same perfect-handoff assumption.
        self._home_store: Set[ObjectId] = set()
        #: memoised object-id -> ring key mapping: ``hash_key`` is a SHA-256
        #: digest per call, and paper-scale replays look the same few thousand
        #: objects up hundreds of thousands of times.  Pure memo — the DHT key
        #: of an object never changes, so draws and routes are unaffected.
        self._object_keys: Dict[ObjectId, int] = {}
        self._bootstrapped = False

    # -- lifecycle ----------------------------------------------------------------

    def bootstrap(self) -> None:
        """Squirrel has no pre-built structure: peers join as clients arrive."""
        self._bootstrapped = True

    @property
    def num_peers(self) -> int:
        return len(self._peers)

    def peer_for_host(self, host_id: int) -> Optional[SquirrelPeer]:
        peer_id = self._peers_by_host.get(host_id)
        return self._peers.get(peer_id) if peer_id else None

    def _join(self, host_id: int) -> SquirrelPeer:
        peer_id = f"sq@{host_id}"
        node_id = self.idspace.hash_key(peer_id)
        # Resolve the (unlikely) identifier collision deterministically.
        while node_id in self.ring or node_id in self._peers_by_node:
            node_id = self.idspace.normalize(node_id + 1)
        self.ring.join(node_id, peer_name=peer_id)
        peer = SquirrelPeer(peer_id=peer_id, host_id=host_id, node_id=node_id)
        self._peers[peer_id] = peer
        self._peers_by_host[host_id] = peer_id
        self._peers_by_node[node_id] = peer_id
        self.latency.register_peer(peer_id, host_id)
        return peer

    # -- helpers -------------------------------------------------------------------

    def _host_latency(self, host_a: int, host_b: int) -> float:
        return self.topology.latency_ms(host_a, host_b)

    def _object_key(self, object_id: ObjectId) -> int:
        key = self._object_keys.get(object_id)
        if key is None:
            key = self.idspace.hash_key(object_id)
            self._object_keys[object_id] = key
        return key

    def _home_node_of(self, object_id: ObjectId) -> Optional[int]:
        return self.ring.successor_of(self._object_key(object_id))

    def _route_latency(self, path: List[int]) -> float:
        if len(path) < 2:
            return 0.0
        # Each interior node is resolved once (not once as src and once as
        # dst), and the lookups are bound locally: this sits on the Squirrel
        # dispatch hot path, once per overlay hop per query.
        peers = self._peers
        by_node = self._peers_by_node
        latency_ms = self.topology.latency_ms
        total = 0.0
        previous_host = peers[by_node[path[0]]].host_id
        for node in path[1:]:
            host = peers[by_node[node]].host_id
            total += latency_ms(previous_host, host)
            previous_host = host
        return total

    # -- query processing -------------------------------------------------------------

    def handle_query(self, query: ResolvedQuery) -> QueryRecord:
        """Process one client query through the Squirrel overlay."""
        if not self._bootstrapped:
            raise RuntimeError("call bootstrap() before handling queries")
        requester = self.peer_for_host(query.client_host)
        if requester is None:
            requester = self._join(query.client_host)
        object_id = query.object_id

        if requester.has_object(object_id):
            record = QueryRecord(
                query_id=query.query_id,
                time=query.time,
                website=query.website,
                locality=query.locality,
                outcome=QueryOutcome.PEER_HIT,
                lookup_latency_ms=0.0,
                transfer_distance_ms=0.0,
                provider=requester.peer_id,
            )
            self.metrics.record(record)
            return record

        # Route through the DHT from the requester to the object's home node.
        path = self.ring.ideal_route(requester.node_id, self._object_key(object_id))
        latency = self._route_latency(path)
        hops = max(0, len(path) - 1)
        home_node = path[-1]
        home_peer = self._peers[self._peers_by_node[home_node]]

        provider, extra_latency, failures = self._locate_at_home(
            home_node, home_peer, object_id
        )
        latency += extra_latency

        if provider is not None:
            distance = self._host_latency(requester.host_id, provider.host_id)
            outcome = QueryOutcome.PEER_HIT
            provider_id = provider.peer_id
        else:
            latency += self.latency.server_latency_ms
            distance = self.latency.server_latency_ms
            outcome = QueryOutcome.SERVER_MISS
            provider_id = None

        self._record_download(home_node, requester, object_id)
        requester.store_object(object_id)

        record = QueryRecord(
            query_id=query.query_id,
            time=query.time,
            website=query.website,
            locality=query.locality,
            outcome=outcome,
            lookup_latency_ms=latency,
            transfer_distance_ms=distance,
            overlay_hops=hops,
            provider=provider_id,
            redirection_failures=failures,
        )
        self.metrics.record(record)
        return record

    def _locate_at_home(
        self, home_node: int, home_peer: SquirrelPeer, object_id: ObjectId
    ) -> tuple[Optional[SquirrelPeer], float, int]:
        """Find a provider using the home node's directory (or its own store)."""
        latency = 0.0
        failures = 0
        if self.config.strategy is SquirrelStrategy.HOME_STORE:
            if object_id in self._home_store:
                # Perfect key handoff: the current home node holds the replica.
                home_peer.store_object(object_id)
                return home_peer, latency, failures
            return None, latency, failures

        pointers = self._directories.get(object_id, [])
        for pointer in list(pointers)[: self.config.max_redirection_attempts]:
            downloader = self._peers.get(pointer)
            if downloader is not None:
                latency += self._host_latency(home_peer.host_id, downloader.host_id)
            if downloader is None or not downloader.alive or not downloader.has_object(object_id):
                pointers.remove(pointer)
                failures += 1
                continue
            return downloader, latency, failures
        return None, latency, failures

    def _record_download(self, home_node: int, requester: SquirrelPeer,
                         object_id: ObjectId) -> None:
        """Register the requester as a recent downloader (or store the object)."""
        if self.config.strategy is SquirrelStrategy.HOME_STORE:
            self._home_store.add(object_id)
            home_peer = self._peers[self._peers_by_node[home_node]]
            home_peer.store_object(object_id)
            return
        directory = self._directories.setdefault(object_id, [])
        if requester.peer_id in directory:
            directory.remove(requester.peer_id)
        directory.insert(0, requester.peer_id)
        del directory[self.config.directory_capacity:]
