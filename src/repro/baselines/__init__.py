"""Baseline P2P web-cache systems used for comparison.

The paper compares Flower-CDN against Squirrel (Iyer, Rowstron, Druschel,
PODC 2002) in its *directory* variant: for every object, the DHT node whose
identifier is closest to the hash of the object's URL stores a small
directory of pointers to recent downloaders; every query is routed through
the DHT to that node, which redirects the client to one of the downloaders.
The *home-store* variant (the object itself is replicated at the home node)
is also provided as an extension.
"""

from repro.baselines.squirrel import Squirrel, SquirrelConfig, SquirrelStrategy

__all__ = ["Squirrel", "SquirrelConfig", "SquirrelStrategy"]
