"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so the package can be installed in editable mode on offline machines whose
tooling lacks the ``wheel`` package (``pip install -e . --no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Flower-CDN: a hybrid P2P overlay for efficient "
        "query processing in CDN (EDBT 2009)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
