# Development entry points for the Flower-CDN reproduction.
#
# The simulation code lives under src/; everything runs against it via
# PYTHONPATH so no installation step is needed.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test goldens check-goldens check-kernel shard-check goldens-paper \
        check-goldens-paper goldens-sweeps check-goldens-sweeps \
        goldens-sweeps-paper sweep-smoke sweeps \
        bench-smoke bench scenarios api-surface api-surface-update \
        perf perf-check perf-baseline perf-paper \
        serve service-smoke \
        analyze analyze-changed lint typecheck

## tier-1 test suite (unit + property + scenario + golden tests + benchmarks)
test:
	$(PYTHON) -m pytest -x -q

## regenerate the committed golden-metrics files after an intentional change
goldens:
	$(PYTHON) -m repro.scenarios.golden --update

## standalone golden verification (CI runs this in addition to `test`)
check-goldens:
	$(PYTHON) -m repro.scenarios.golden

## verify the columnar kernel reproduces every standard-tier golden (CI step)
check-kernel:
	$(PYTHON) -m repro.scenarios.golden --kernel --tier standard

## verify the space-parallel shard engine reproduces the committed goldens
## on both backends (the per-PR sharded-equivalence smoke)
shard-check:
	$(PYTHON) -m repro.scenarios.golden --shards 2 paper-default multi-locality locality-partition partition-heal-reconcile
	$(PYTHON) -m repro.scenarios.golden --shards 2 --kernel paper-default locality-partition
	$(PYTHON) -m repro.scenarios.golden --shards 4 paper-default

## fast benchmark subset: parameter table + the headline Figure 6 comparison
bench-smoke:
	$(PYTHON) -m pytest benchmarks/test_table1_parameters.py \
		benchmarks/test_fig6_hit_ratio_comparison.py -q

## the full figure/table benchmark suite (laptop scale)
bench:
	$(PYTHON) -m pytest benchmarks/ -q

## list the scenario library
scenarios:
	$(PYTHON) -m repro.cli scenarios list

## verify the committed public-API snapshot (tests/api_surface.json)
api-surface:
	$(PYTHON) -m pytest tests/test_api_surface.py -q

## refresh the API snapshot after an intentional public-API change
api-surface-update:
	$(PYTHON) tests/test_api_surface.py --update

## run the perf-benchmark suite; writes ./BENCH_core.json (see docs/performance.md)
perf:
	$(PYTHON) -m repro.cli perf

## perf suite + regression gate against the committed baseline (what CI runs)
perf-check:
	$(PYTHON) -m repro.cli perf --check

## refresh the committed perf baseline (benchmarks/perf/BENCH_core.json)
perf-baseline:
	$(PYTHON) -m repro.cli perf --update-baseline

## perf suite including the end-to-end paper-scale benchmark (minutes)
perf-paper:
	$(PYTHON) -m repro.cli perf --paper-scale

## list the registered parameter sweeps
sweeps:
	$(PYTHON) -m repro.cli sweep list

## regenerate the committed sweep goldens (tests/goldens/sweeps/)
goldens-sweeps:
	$(PYTHON) -m repro.sweeps.golden --update --jobs 4

## verify the committed sweep goldens (also covered by `make test`)
check-goldens-sweeps:
	$(PYTHON) -m repro.sweeps.golden --jobs 4

## small sweep grid across 2 workers with artifact export (what CI runs)
sweep-smoke:
	$(PYTHON) -m repro.cli sweep run table2a-gossip-length \
		--scale 0.1 --jobs 2 --out sweep-artifacts --table

## regenerate the nightly paper-scale goldens (full Table 1 runs; minutes each)
goldens-paper:
	$(PYTHON) -m repro.scenarios.golden --update --tier paper-scale

## verify the paper-scale goldens (what the nightly job runs)
check-goldens-paper:
	$(PYTHON) -m repro.scenarios.golden --tier paper-scale

## regenerate the nightly scale-1.0 sweep golden (Table 2a grid; minutes)
goldens-sweeps-paper:
	$(PYTHON) -m repro.sweeps.golden --update --scale 1.0 table2a-gossip-length

## run the HTTP job service on the default port (see docs/service.md)
serve:
	$(PYTHON) -m repro.cli serve --store run-store

## boot the service on an ephemeral port and drive the end-to-end smoke
## (dedupe, byte-identity vs a direct run, 429 backpressure, graceful drain)
service-smoke:
	$(PYTHON) scripts/service_smoke.py --store service-smoke-store

## determinism/invariant static analysis (rules DET001..DET006, in-tree, no deps)
analyze:
	$(PYTHON) -m repro.cli analyze src

## analyze only files changed vs HEAD (the fast pre-commit loop)
analyze-changed:
	$(PYTHON) -m repro.cli analyze --changed src tests

## ruff style/hygiene lint; skipped with a notice when ruff is not installed
lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping (CI runs it — see .github/workflows/ci.yml)"; \
	fi

## mypy typing gate (strict-ish for core/sim/datastructures/scenarios, mypy.ini);
## skipped with a notice when mypy is not installed
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --config-file mypy.ini; \
	else \
		echo "mypy not installed; skipping (CI runs it — see .github/workflows/ci.yml)"; \
	fi
